package detect

import (
	"fmt"
	"math"
)

// ChebyshevHC returns the smallest consecutive-violation threshold H_C such
// that, by Chebyshev's inequality (paper Eq. 4), the probability of a false
// alarm — H_C consecutive out-of-range values without an attack — is at
// most 1−confidence: (1/k²)^H_C ≤ 1−confidence.
//
// For the paper's k=1.125 and 99.9% confidence this yields H_C=30 (Table 1).
func ChebyshevHC(k, confidence float64) (int, error) {
	if k <= 1 {
		return 0, fmt.Errorf("detect: Chebyshev boundary factor must exceed 1, got %v", k)
	}
	if confidence <= 0 || confidence >= 1 {
		return 0, fmt.Errorf("detect: confidence must be in (0,1), got %v", confidence)
	}
	perSample := 1 / (k * k) // P(single value out of μ±kσ)
	target := 1 - confidence
	// (perSample)^H ≤ target  ⇔  H ≥ log(target)/log(perSample).
	h := math.Log(target) / math.Log(perSample)
	hc := int(math.Ceil(h - 1e-12))
	if hc < 1 {
		hc = 1
	}
	return hc, nil
}

// ChebyshevFalseAlarmBound returns the Chebyshev upper bound on the
// false-alarm probability for the given (k, H_C) pair: (1/k²)^H_C.
func ChebyshevFalseAlarmBound(k float64, hc int) (float64, error) {
	if k <= 1 {
		return 0, fmt.Errorf("detect: Chebyshev boundary factor must exceed 1, got %v", k)
	}
	if hc <= 0 {
		return 0, fmt.Errorf("detect: H_C must be positive, got %d", hc)
	}
	return math.Pow(1/(k*k), float64(hc)), nil
}
