// Package cloudsim is the event-driven datacenter simulation core: it scales
// the repository's closed detection loop from one lockstep-simulated host to
// thousands of hosts in seconds of wall clock, on a single CPU core.
//
// # Event model
//
// Virtual time is an integer tick count, one tick per T_PCM sampling
// interval, so no float drift can accumulate across hosts. Everything that
// changes the course of a run is an event on a single priority queue keyed
// by (tick, kind, host, vm, seq): VM arrivals and departures (co-residency
// churn), attacker placements and campaign hops, mitigation actions
// (throttle, verify, migrate, resume). Between events nothing is simulated
// eagerly: each host tracks the tick it has been advanced to and is brought
// forward lazily, in ΔW-sample blocks, only when an event touches the
// cluster. Quiescent intervals therefore cost nothing but the telemetry
// blocks they cover, and those are generated in closed form.
//
// # Fidelities
//
// The engine has two interchangeable telemetry fidelities:
//
//   - FidelityExact advances monitored VMs one T_PCM sample at a time
//     through the calibrated workload.Model and detect.Detector.Observe —
//     bit-identical to the lockstep Simulate loop (proved by the
//     equivalence property test in equivalence_test.go).
//   - FidelityWindow generates one closed-form block of ΔW samples per
//     step: the block mean of each counter is drawn directly from the
//     model's analytic distribution (phase level, periodic waveform and
//     bursts integrated over the block; CLT noise cv/√ΔW) and fed to the
//     detector through detect.WindowObserver.ObserveMA. This is ~ΔW× fewer
//     RNG draws and detector updates per virtual second and is what makes
//     1000-host × 8-VM × 900-second runs complete in single-digit seconds.
//
// # Determinism
//
// The engine is strictly single-threaded and all randomness is derived from
// the scenario seed through labelled randx substreams (one per VM model,
// one each for placement, churn and campaigns), so equal scenarios produce
// byte-identical results. The event key makes the pop order a total order
// over distinct events: permuting the insertion order of same-tick events
// cannot change the outcome. Parallelism lives one layer up, in
// internal/experiment's worker pool, which collects results in input order.
package cloudsim
