// Command sdsload replays N simulated VM telemetry streams against a
// running sdsd and reports aggregate throughput — a load generator and
// smoke-test client in one.
//
// Each simulated VM reuses the `detectd -record` replay path (same app
// models, same attack schedules, deterministic per-VM seeds), so a given
// flag set always produces the same streams. With -attack-at every VM
// comes under attack mid-stream and -expect-alarms turns the run into an
// assertion: the exit status is non-zero when any stream loses samples or
// raises fewer alarms than expected.
//
//	# 32 clean VM streams
//	sdsload -addr 127.0.0.1:7031 -vms 32 -seconds 120 -profile-seconds 60
//
//	# attacked streams; fail unless every VM alarms
//	sdsload -addr 127.0.0.1:7031 -vms 8 -seconds 180 -profile-seconds 60 \
//	        -attack-at 120 -expect-alarms 1
//
//	# 10k binary-frame streams, pre-rendered so the measured window is
//	# pure ingest; emit a go-bench line for benchjson
//	sdsload -addr 127.0.0.1:7031 -vms 10000 -seconds 30 -profile-seconds 15 \
//	        -frames bin -prebuild -bench-name ServerIngestBin10k
//
//	# 100k streams from 2 load processes (one GOMAXPROCS-bound sdsload
//	# cannot saturate a sharded server), rotating across loopback
//	# addresses so no single 4-tuple space runs out of ephemeral ports,
//	# -inflight bounding concurrent sockets under RLIMIT_NOFILE
//	sdsload -addr 127.0.0.1:7031,127.0.0.2:7031 -vms 100000 -procs 2 \
//	        -seconds 20 -profile-seconds 10 -frames bin -inflight 6000
//
// With -procs N the run re-executes itself into N worker processes, each
// owning a contiguous slice of the VM index space. Workers prebuild and
// pre-dial, report readiness over a shared pipe, block on a start pipe the
// parent closes to broadcast the go signal, and report their accounting
// back over the shared pipe; the parent merges the numbers and measures
// the wall clock from the broadcast to the last report — the same measured
// window a single process has.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/memdos/sds/internal/server"
)

// config is one sdsload run's full parameter set.
type config struct {
	addr           string
	addrs          []string // addr split on commas; VM i dials addrs[i%len]
	network        string   // tcp or unix
	app            string
	scheme         string
	frames         string // csv or bin
	vms            int
	seconds        float64
	profileSeconds float64
	attackAt       float64
	attackStrategy string // evasive strategy name ("" = steady)
	seed           uint64 // VM i streams with seed+i
	expectAlarms   int
	retries        int
	prebuild       bool   // render every stream before the clock starts
	inflight       int    // max concurrent streams per process (0 = all)
	benchName      string // emit a go-bench result line under this name
	procs          int    // worker processes (1 = in-process)
	workerID       int    // ≥0: this process is worker workerID of procs
}

// fdHeadroom pads the fd budget past one fd per stream: pipes, listeners,
// profile outputs, stdio.
const fdHeadroom = 256

const (
	framesCSV = "csv"
	framesBin = "bin"
)

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:7031", "sdsd stream address")
	flag.StringVar(&cfg.network, "network", "tcp", "stream network: tcp or unix")
	flag.IntVar(&cfg.vms, "vms", 8, "number of concurrent VM streams")
	flag.Float64Var(&cfg.seconds, "seconds", 120, "virtual seconds of telemetry per VM")
	flag.Float64Var(&cfg.profileSeconds, "profile-seconds", 60, "Stage-1 profile window sent in the handshake")
	flag.StringVar(&cfg.app, "app", "kmeans", "application model for the simulated VMs")
	flag.StringVar(&cfg.scheme, "scheme", "sds", "detection scheme sent in the handshake")
	flag.StringVar(&cfg.frames, "frames", framesCSV, "stream encoding: csv or bin")
	flag.Float64Var(&cfg.attackAt, "attack-at", 0, "start a bus-locking attack at this stream time (0 = none)")
	flag.StringVar(&cfg.attackStrategy, "attack-strategy", "", "evasive attacker strategy: steady, duty-cycle, period-mimic, slow-ramp, coordinated or reprofile-timed (default steady)")
	flag.Uint64Var(&cfg.seed, "seed", 1, "base seed; VM i streams with seed+i")
	flag.IntVar(&cfg.expectAlarms, "expect-alarms", 0, "fail unless every VM raises at least this many alarms")
	flag.IntVar(&cfg.retries, "connect-retries", 10, "connection attempts per VM (100ms apart) before giving up")
	flag.BoolVar(&cfg.prebuild, "prebuild", false, "render every stream to memory first so the timed window measures ingest, not sample generation")
	flag.IntVar(&cfg.inflight, "inflight", 0, "max concurrent streams per process, 0 = all at once (bounds open sockets when -vms exceeds the fd limit)")
	flag.StringVar(&cfg.benchName, "bench-name", "", "also print a `go test -bench`-style result line (Benchmark<name> …) for benchjson")
	flag.IntVar(&cfg.procs, "procs", 1, "split the run across this many load processes (re-execs itself)")
	flag.IntVar(&cfg.workerID, "worker-id", -1, "internal: this process is one -procs worker (set by the parent)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	flag.Parse()
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sdsload:", err)
			os.Exit(1)
		}
		pprof.StartCPUProfile(f)
		defer pprof.StopCPUProfile()
	}
	if err := run(cfg); err != nil {
		pprof.StopCPUProfile()
		fmt.Fprintln(os.Stderr, "sdsload:", err)
		os.Exit(1)
	}
}

// vmResult is one stream's outcome.
type vmResult struct {
	vm      string
	sent    int
	samples int // samples the server accounted for in its done line
	alarms  int
	err     error
}

// body is one VM's pre-rendered stream.
type body struct {
	data []byte
	n    int // samples encoded in data
}

func run(cfg config) error {
	if cfg.vms <= 0 {
		return fmt.Errorf("need at least one VM stream, got %d", cfg.vms)
	}
	if cfg.frames != framesCSV && cfg.frames != framesBin {
		return fmt.Errorf("unknown -frames value %q (want csv or bin)", cfg.frames)
	}
	if cfg.prebuild && cfg.inflight > 0 {
		return fmt.Errorf("-prebuild pre-dials every stream; it cannot honor an -inflight socket bound")
	}
	cfg.addrs = strings.Split(cfg.addr, ",")
	if cfg.procs > 1 && cfg.workerID >= 0 {
		return runWorker(cfg)
	}
	// Fail on a short fd budget before dialing, not 28k dials in. The
	// whole budget is checked even in parent mode: workers inherit the
	// raised limit, and each needs only its share of it. An -inflight
	// bound caps the budget regardless of -vms.
	perProc := cfg.vms / max(cfg.procs, 1)
	if cfg.inflight > 0 && cfg.inflight < perProc {
		perProc = cfg.inflight
	}
	if _, err := server.EnsureFDLimit(uint64(perProc) + fdHeadroom); err != nil {
		return fmt.Errorf("%v (%d concurrent streams per process need that many open files; raise ulimit -n, lower -vms or bound -inflight)", err, perProc)
	}
	if cfg.procs > 1 {
		return runParent(cfg)
	}

	bodies, conns, cleanup, err := prepare(cfg, 0, cfg.vms)
	defer cleanup()
	if err != nil {
		return err
	}

	start := time.Now()
	results := streamRange(cfg, 0, cfg.vms, bodies, conns)
	elapsed := time.Since(start)

	t := tally(cfg, results)
	report(cfg, t, elapsed)
	if t.Failures > 0 {
		return fmt.Errorf("%d of %d streams failed", t.Failures, cfg.vms)
	}
	return nil
}

// streamTally is merged accounting for a set of streams.
type streamTally struct {
	Sent     int `json:"sent"`
	Samples  int `json:"samples"`
	Alarms   int `json:"alarms"`
	Failures int `json:"failures"`
}

// report prints the human summary and, when asked, the go-bench line.
func report(cfg config, t streamTally, elapsed time.Duration) {
	rate := float64(t.Samples) / elapsed.Seconds()
	fmt.Printf("sdsload: %d VMs, %d samples in %.2fs (%.0f samples/sec), %d alarms\n",
		cfg.vms, t.Samples, elapsed.Seconds(), rate, t.Alarms)
	if cfg.benchName != "" && t.Samples > 0 {
		// One result line in `go test -bench` format so the run lands in the
		// BENCH_PR*.json trajectory through the same benchjson pipeline as
		// the in-process benchmarks: iterations = samples ingested, ns/op =
		// wall time per sample across all streams.
		fmt.Printf("Benchmark%s \t%8d\t%12.1f ns/op\t%12.0f samples/sec\n",
			cfg.benchName, t.Samples, float64(elapsed.Nanoseconds())/float64(t.Samples), rate)
	}
}

// prepare renders and pre-dials global VM indices [lo,hi) when -prebuild
// is set (index i's body and conn land at slot i-lo). Always returns a
// runnable cleanup.
//
// -prebuild trades memory for a clean measurement: every stream is
// rendered — and every connection dialed — before the clock starts, so
// the timed window contains only the handshakes, the encoded transport,
// and server-side ingest. Dialing up front matters at 10k streams: a
// cold connect storm overflows the accept backlog and the resulting
// SYN retransmits would otherwise dominate the measured window.
func prepare(cfg config, lo, hi int) (bodies []body, conns []net.Conn, cleanup func(), err error) {
	cleanup = func() {}
	if !cfg.prebuild {
		return nil, nil, cleanup, nil
	}
	n := hi - lo
	bodies = make([]body, n)
	for i := range bodies {
		b, err := renderStream(cfg, cfg.seed+uint64(lo+i))
		if err != nil {
			return nil, nil, cleanup, fmt.Errorf("prebuilding stream %d: %w", lo+i, err)
		}
		bodies[i] = b
	}
	conns = make([]net.Conn, n)
	cleanup = func() {
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
	}
	var dialErr error
	var mu sync.Mutex
	var dwg sync.WaitGroup
	// Bound the dial burst: 100k goroutines all in connect(2) at once melt
	// the loopback accept path; ~512 in flight keeps the backlog honest.
	sem := make(chan struct{}, 512)
	for i := 0; i < n; i++ {
		dwg.Add(1)
		go func(i int) {
			defer dwg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			c, err := dialRetry(cfg.network, cfg.dialAddr(lo+i), cfg.retries)
			if err != nil {
				mu.Lock()
				dialErr = err
				mu.Unlock()
				return
			}
			conns[i] = c
		}(i)
	}
	dwg.Wait()
	if dialErr != nil {
		return bodies, conns, cleanup, fmt.Errorf("pre-dialing %d streams: %w", n, dialErr)
	}
	return bodies, conns, cleanup, nil
}

// streamRange runs global VM indices [lo,hi) concurrently. With
// cfg.inflight > 0 at most that many streams hold sockets at once: the
// semaphore wraps each stream's dial-to-close lifetime, so a 100k-VM run
// rolls through a bounded window of connections instead of needing 100k
// file descriptors at its peak.
func streamRange(cfg config, lo, hi int, bodies []body, conns []net.Conn) []vmResult {
	results := make([]vmResult, hi-lo)
	var sem chan struct{}
	if cfg.inflight > 0 {
		sem = make(chan struct{}, cfg.inflight)
	}
	var wg sync.WaitGroup
	for i := lo; i < hi; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if sem != nil {
				sem <- struct{}{}
				defer func() { <-sem }()
			}
			vm := fmt.Sprintf("load-%05d", i)
			var pre *body
			var conn net.Conn
			if cfg.prebuild {
				pre, conn = &bodies[i-lo], conns[i-lo]
			}
			results[i-lo] = streamVM(cfg, vm, cfg.seed+uint64(i), pre, conn, cfg.dialAddr(i))
		}(i)
	}
	wg.Wait()
	return results
}

// tally merges stream results, reporting each failure to stderr.
func tally(cfg config, results []vmResult) streamTally {
	var t streamTally
	for _, r := range results {
		switch {
		case r.err != nil:
			t.Failures++
			fmt.Fprintf(os.Stderr, "sdsload: %s: %v\n", r.vm, r.err)
		case r.samples != r.sent:
			t.Failures++
			fmt.Fprintf(os.Stderr, "sdsload: %s: sent %d samples, server accounted %d — samples lost\n", r.vm, r.sent, r.samples)
		case r.alarms < cfg.expectAlarms:
			t.Failures++
			fmt.Fprintf(os.Stderr, "sdsload: %s: %d alarms, expected at least %d\n", r.vm, r.alarms, cfg.expectAlarms)
		}
		t.Sent += r.sent
		t.Samples += r.samples
		t.Alarms += r.alarms
	}
	return t
}

// dialAddr rotates VM streams across the comma-separated -addr list. At
// 100k connections to a single ip:port the client side runs out of
// ephemeral ports (~28k per 4-tuple, and TIME_WAIT holds freed ones
// across back-to-back passes), so the fleet spreads its connections over
// several destination addresses — e.g. 127.0.0.1..8 all reaching one
// wildcard-bound sdsd.
func (c *config) dialAddr(i int) string { return c.addrs[i%len(c.addrs)] }

// runWorker is one -procs worker process: prepare the slice, report
// readiness on the shared done pipe (fd 4), block until the parent closes
// the start pipe (fd 3) to broadcast the go signal, stream, and report the
// tally as one JSON line. Lines stay far under PIPE_BUF, so concurrent
// workers' writes never interleave. Stream-level failures travel in the
// tally (exit 0); a non-zero exit means the worker's infrastructure broke.
func runWorker(cfg config) error {
	if cfg.procs < 1 || cfg.workerID >= cfg.procs {
		return fmt.Errorf("bad worker geometry: worker %d of %d", cfg.workerID, cfg.procs)
	}
	startPipe := os.NewFile(3, "start-pipe")
	donePipe := os.NewFile(4, "done-pipe")
	if startPipe == nil || donePipe == nil {
		return fmt.Errorf("worker started without rendezvous pipes (use -procs, not -worker-id)")
	}
	lo := cfg.workerID * cfg.vms / cfg.procs
	hi := (cfg.workerID + 1) * cfg.vms / cfg.procs
	bodies, conns, cleanup, err := prepare(cfg, lo, hi)
	defer cleanup()
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(donePipe, "ready %d\n", cfg.workerID); err != nil {
		return fmt.Errorf("reporting ready: %w", err)
	}
	if _, err := io.ReadAll(startPipe); err != nil {
		return fmt.Errorf("waiting for start: %w", err)
	}
	t := tally(cfg, streamRange(cfg, lo, hi, bodies, conns))
	line, err := json.Marshal(t)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(donePipe, "done %d %s\n", cfg.workerID, line); err != nil {
		return fmt.Errorf("reporting done: %w", err)
	}
	return nil
}

// runParent re-executes this binary into cfg.procs workers and merges
// their accounting. The measured window opens when the last worker reports
// ready (the parent then closes the start pipe — one close broadcasts to
// every worker at once) and closes when the last done line arrives: the
// same window a single process measures, without any worker-start skew.
func runParent(cfg config) error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	startR, startW, err := os.Pipe()
	if err != nil {
		return err
	}
	doneR, doneW, err := os.Pipe()
	if err != nil {
		return err
	}
	cmds := make([]*exec.Cmd, cfg.procs)
	for i := range cmds {
		cmd := exec.Command(exe, workerArgs(cfg, i)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		cmd.ExtraFiles = []*os.File{startR, doneW} // worker fds 3 and 4
		if err := cmd.Start(); err != nil {
			startW.Close()
			for _, c := range cmds[:i] {
				c.Process.Kill()
			}
			return fmt.Errorf("starting worker %d: %w", i, err)
		}
		cmds[i] = cmd
	}
	// Drop the parent's pipe copies: the workers must see EOF on the start
	// pipe when startW closes, and the done reader must see EOF when the
	// last worker exits.
	startR.Close()
	doneW.Close()

	lines := make(chan string)
	go func() {
		sc := bufio.NewScanner(doneR)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	type workerExit struct {
		id  int
		err error
	}
	exits := make(chan workerExit, cfg.procs)
	for i, cmd := range cmds {
		go func(i int, cmd *exec.Cmd) { exits <- workerExit{i, cmd.Wait()} }(i, cmd)
	}

	var t streamTally
	var start time.Time
	var elapsed time.Duration
	ready, done, exited := 0, 0, 0
	for done < cfg.procs {
		select {
		case line, ok := <-lines:
			if !ok {
				return fmt.Errorf("workers exited before reporting (%d/%d done)", done, cfg.procs)
			}
			switch kind, rest, _ := strings.Cut(line, " "); kind {
			case "ready":
				ready++
				if ready == cfg.procs {
					start = time.Now()
					startW.Close() // broadcast: go
				}
			case "done":
				_, payload, _ := strings.Cut(rest, " ")
				var wt streamTally
				if err := json.Unmarshal([]byte(payload), &wt); err != nil {
					return fmt.Errorf("bad worker report %q: %w", line, err)
				}
				t.Sent += wt.Sent
				t.Samples += wt.Samples
				t.Alarms += wt.Alarms
				t.Failures += wt.Failures
				done++
				if done == cfg.procs {
					elapsed = time.Since(start)
				}
			default:
				return fmt.Errorf("bad worker report %q", line)
			}
		case ex := <-exits:
			exited++
			if ex.err != nil {
				// Infrastructure failure (prepare, pipes): the other workers
				// are blocked on the start pipe and will never finish.
				for _, c := range cmds {
					c.Process.Kill()
				}
				return fmt.Errorf("worker %d: %v", ex.id, ex.err)
			}
		}
	}
	for exited < cfg.procs {
		if ex := <-exits; ex.err != nil {
			return fmt.Errorf("worker %d: %v", ex.id, ex.err)
		} else {
			exited++
		}
	}

	report(cfg, t, elapsed)
	if t.Failures > 0 {
		return fmt.Errorf("%d of %d streams failed", t.Failures, cfg.vms)
	}
	return nil
}

// workerArgs rebuilds the flag set for worker i. -cpuprofile and
// -bench-name stay with the parent (workers share its stdout).
func workerArgs(cfg config, i int) []string {
	args := []string{
		"-addr", cfg.addr,
		"-network", cfg.network,
		"-vms", strconv.Itoa(cfg.vms),
		"-seconds", fmt.Sprintf("%g", cfg.seconds),
		"-profile-seconds", fmt.Sprintf("%g", cfg.profileSeconds),
		"-app", cfg.app,
		"-scheme", cfg.scheme,
		"-frames", cfg.frames,
		"-attack-at", fmt.Sprintf("%g", cfg.attackAt),
		"-attack-strategy", cfg.attackStrategy,
		"-seed", strconv.FormatUint(cfg.seed, 10),
		"-expect-alarms", strconv.Itoa(cfg.expectAlarms),
		"-connect-retries", strconv.Itoa(cfg.retries),
		"-inflight", strconv.Itoa(cfg.inflight),
		"-procs", strconv.Itoa(cfg.procs),
		"-worker-id", strconv.Itoa(i),
	}
	if cfg.prebuild {
		args = append(args, "-prebuild")
	}
	return args
}

// spec builds the deterministic replay spec for one VM.
func spec(cfg config, seed uint64) server.ReplaySpec {
	return server.ReplaySpec{
		App:      cfg.app,
		Seconds:  cfg.seconds,
		AttackAt: cfg.attackAt,
		Strategy: cfg.attackStrategy,
		Seed:     seed,
	}
}

// renderStream encodes one VM's full stream into memory.
func renderStream(cfg config, seed uint64) (body, error) {
	var buf bytes.Buffer
	// Pre-size the body: growing a multi-MB buffer by doubling re-copies
	// it ~twice, which adds up across 10k prebuilt streams. The estimate
	// uses the Table 1 sampling interval (~100 samples per virtual second)
	// and each encoding's worst-case bytes per sample.
	est := int(cfg.seconds*100) + 128
	if cfg.frames == framesBin {
		buf.Grow(est*24 + est/1024*3 + 64)
	} else {
		buf.Grow(est * 48)
	}
	var n int
	var err error
	if cfg.frames == framesBin {
		n, err = server.WriteSimulatedStreamBinary(&buf, spec(cfg, seed))
	} else {
		n, err = server.WriteSimulatedStream(&buf, spec(cfg, seed))
	}
	return body{data: buf.Bytes(), n: n}, err
}

// streamVM runs one VM's full stream lifecycle against the server. With a
// pre-rendered body the telemetry is a single bulk write; otherwise the
// stream is generated and encoded on the fly. A non-nil conn (pre-dialed
// by run) is used as-is; otherwise streamVM dials its own.
func streamVM(cfg config, vm string, seed uint64, pre *body, conn net.Conn, addr string) vmResult {
	res := vmResult{vm: vm}
	if conn == nil {
		var err error
		conn, err = dialRetry(cfg.network, addr, cfg.retries)
		if err != nil {
			res.err = err
			return res
		}
	}
	defer conn.Close()

	// The handshake reply is validated synchronously before any telemetry is
	// sent: a server that rejects the handshake — or closes the connection
	// without replying at all — is a hard failure, not a stream that happens
	// to account zero samples.
	br := bufio.NewReaderSize(conn, 64*1024)
	hs := fmt.Sprintf("sds/1 vm=%s app=%s scheme=%s profile=%g", vm, cfg.app, cfg.scheme, cfg.profileSeconds)
	if cfg.frames == framesBin {
		hs += " frames=bin"
	}
	if _, err := fmt.Fprintf(conn, "%s\n", hs); err != nil {
		res.err = err
		return res
	}
	reply, err := br.ReadString('\n')
	if err != nil {
		res.err = fmt.Errorf("handshake reply: %w", err)
		return res
	}
	switch reply = strings.TrimSpace(reply); {
	case strings.HasPrefix(reply, "error: "):
		res.err = fmt.Errorf("server rejected handshake: %s", strings.TrimPrefix(reply, "error: "))
		return res
	case !strings.HasPrefix(reply, "ok "):
		res.err = fmt.Errorf("unexpected handshake reply %q", reply)
		return res
	case cfg.frames == framesBin && !strings.HasSuffix(reply, " frames=bin"):
		res.err = fmt.Errorf("server did not confirm binary frames: %q", reply)
		return res
	}

	// The server streams alarm lines inline, so read concurrently with the
	// write — an unread response buffer would backpressure our own stream.
	type doneInfo struct {
		samples int
		err     error
	}
	resp := make(chan doneInfo, 1)
	alarmCount := make(chan int, 1)
	go func() {
		alarms := 0
		var d doneInfo
		d.samples = -1
		sc := bufio.NewScanner(br)
		sc.Buffer(make([]byte, 64*1024), 1024*1024)
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "alarm "):
				alarms++
			case strings.HasPrefix(line, "error: "):
				d.err = fmt.Errorf("server: %s", strings.TrimPrefix(line, "error: "))
			case strings.HasPrefix(line, "done "):
				for _, f := range strings.Fields(line)[1:] {
					if v, ok := strings.CutPrefix(f, "samples="); ok {
						d.samples, _ = strconv.Atoi(v)
					}
				}
			}
		}
		if d.err == nil {
			d.err = sc.Err()
		}
		alarmCount <- alarms
		resp <- d
	}()

	if pre != nil {
		if _, err := conn.Write(pre.data); err != nil {
			res.err = fmt.Errorf("streaming: %w", err)
			return res
		}
		res.sent = pre.n
	} else {
		var n int
		var err error
		if cfg.frames == framesBin {
			n, err = server.WriteSimulatedStreamBinary(conn, spec(cfg, seed))
		} else {
			n, err = server.WriteSimulatedStream(conn, spec(cfg, seed))
		}
		if err != nil {
			res.err = fmt.Errorf("streaming: %w", err)
			return res
		}
		res.sent = n
	}
	if cw, ok := conn.(interface{ CloseWrite() error }); ok {
		cw.CloseWrite()
	}
	res.alarms = <-alarmCount
	d := <-resp
	res.samples = d.samples
	if d.err != nil {
		res.err = d.err
	} else if d.samples < 0 {
		res.err = fmt.Errorf("connection closed without a done line")
	}
	return res
}

// dialRetry connects with retries so sdsload can start before sdsd's
// listener is up (the smoke test launches both at once).
func dialRetry(network, addr string, retries int) (net.Conn, error) {
	var err error
	for i := 0; i < retries; i++ {
		var conn net.Conn
		if conn, err = net.Dial(network, addr); err == nil {
			return conn, nil
		}
		time.Sleep(100 * time.Millisecond)
	}
	return nil, fmt.Errorf("connecting to %s %s: %w", network, addr, err)
}
