package server

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"strings"
	"testing"

	"github.com/memdos/sds/internal/detect"
	"github.com/memdos/sds/internal/feed"
	"github.com/memdos/sds/internal/pcm"
)

// synthSample builds a deterministic sample: a stable distribution around
// base with a small repeating jitter, which KS accepts against itself and
// strongly rejects against a shifted base.
func synthSample(i int, tpcm, base float64) pcm.Sample {
	return pcm.Sample{
		T:      float64(i+1) * tpcm,
		Access: base + float64(i%7),
		Miss:   base/10 + float64(i%3),
	}
}

// feedSynth streams samples [from, to) into the session.
func feedSynth(t *testing.T, sess *Session, from, to int, tpcm, base float64) {
	t.Helper()
	for i := from; i < to; i++ {
		if err := sess.Observe(synthSample(i, tpcm, base)); err != nil {
			t.Fatalf("observe sample %d: %v", i, err)
		}
	}
}

// TestProfileWindowExactSampleCount pins the profiling-window boundary: a
// ProfileSeconds window over a T_PCM grid starting at T_PCM holds exactly
// SampleCount(ProfileSeconds, T_PCM) samples, and the boundary sample is
// the FIRST MONITORED one. The historical `s.T >= cutoff` loop consumed one
// sample past the window into the profile (3001 here instead of 3000).
func TestProfileWindowExactSampleCount(t *testing.T) {
	const (
		tpcm           = 0.01
		profileSeconds = 30.0
		total          = 3500
	)
	var profiled int
	sess, err := NewSession(StreamSpec{
		VM:             "t",
		ProfileSeconds: profileSeconds,
		OnProfile:      func(_ detect.Profile, n int) { profiled = n },
	})
	if err != nil {
		t.Fatal(err)
	}
	feedSynth(t, sess, 0, total, tpcm, 100)
	want := pcm.SampleCount(profileSeconds, tpcm)
	if profiled != want {
		t.Errorf("profile consumed %d samples, want exactly %d", profiled, want)
	}
	stats, err := sess.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := stats.Monitored, uint64(total-want); got != want {
		t.Errorf("monitored %d samples, want %d (boundary sample must start the monitored stage)", got, want)
	}
	if stats.Ingested() != total {
		t.Errorf("ingested %d != streamed %d", stats.Ingested(), total)
	}
}

// ksTestConfig returns baseline parameters with a reference interval long
// enough that no re-collection lands inside the test windows.
func ksTestConfig() detect.KSTestConfig {
	cfg := detect.DefaultKSTestConfig()
	cfg.LR = 60
	return cfg
}

// TestKSTestReferencePredatesMonitoring asserts the Stage-1 seeding fix
// directly: the baseline's first reference (and hence its first KS check)
// happens inside the profiling window, before any monitored sample. The
// historical code discarded the profile window, so the first check could
// only happen AFTER monitoring began.
func TestKSTestReferencePredatesMonitoring(t *testing.T) {
	const (
		tpcm           = 0.01
		profileSeconds = 40.0
	)
	var checks []detect.CheckStat
	sess, err := NewSession(StreamSpec{
		VM:             "t",
		Scheme:         "kstest",
		ProfileSeconds: profileSeconds,
		KSConfig:       ksTestConfig(),
		KSOptions: []detect.KSTestOption{
			detect.WithKSTestCheckHook(func(cs detect.CheckStat) { checks = append(checks, cs) }),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	feedSynth(t, sess, 0, 4500, tpcm, 100)
	if _, err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if len(checks) == 0 {
		t.Fatal("no KS checks ran")
	}
	monitoringStart := profileSeconds + tpcm
	if checks[0].T >= monitoringStart {
		t.Errorf("first KS check at %.2fs, after monitoring began at %.2fs — reference was not seeded from the profile window",
			checks[0].T, monitoringStart)
	}
}

// TestKSTestDetectsAttackRightAfterProfiling is the end-to-end regression:
// a stream attacked from the instant monitoring starts. Pre-fix, KStest
// collected its first reference from the (attacked) monitored tail,
// learned an under-attack baseline, and never alarmed.
func TestKSTestDetectsAttackRightAfterProfiling(t *testing.T) {
	const (
		tpcm           = 0.01
		profileSeconds = 40.0
		profileN       = 4000
		total          = 7500
	)
	sess, err := NewSession(StreamSpec{
		VM:             "t",
		Scheme:         "kstest",
		ProfileSeconds: profileSeconds,
		KSConfig:       ksTestConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Stage 1: normal behaviour around 100.
	feedSynth(t, sess, 0, profileN, tpcm, 100)
	// Stage 2: full-intensity bus-lock-like collapse from the very first
	// monitored sample.
	feedSynth(t, sess, profileN, total, tpcm, 30)
	stats, err := sess.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Alarms == 0 {
		t.Fatal("KStest raised no alarm for a stream attacked right after profiling: the baseline was learned under attack")
	}
	alarms := sess.Alarms()
	if first := alarms[0].T; first <= profileSeconds {
		t.Errorf("alarm at %.2fs is inside the attack-free profile window", first)
	}
}

// TestSessionSpecValidation covers spec normalization failures.
func TestSessionSpecValidation(t *testing.T) {
	if _, err := NewSession(StreamSpec{VM: "x", ProfileSeconds: 0}); err == nil {
		t.Error("zero profile window accepted")
	}
	if _, err := NewSession(StreamSpec{VM: "x", ProfileSeconds: -3}); err == nil {
		t.Error("negative profile window accepted")
	}
	if _, err := NewSession(StreamSpec{VM: "x", Scheme: "bogus", ProfileSeconds: 30}); err == nil {
		t.Error("unknown scheme accepted")
	}
}

// TestSessionEOFDuringProfiling: a stream that ends inside Stage 1 is an
// error at Close, with the fill level in the message.
func TestSessionEOFDuringProfiling(t *testing.T) {
	sess, err := NewSession(StreamSpec{VM: "x", ProfileSeconds: 900})
	if err != nil {
		t.Fatal(err)
	}
	feedSynth(t, sess, 0, 10, 0.01, 100)
	_, err = sess.Close()
	if err == nil {
		t.Fatal("truncated profiling stream accepted")
	}
	if !strings.Contains(err.Error(), "profiling window") || !strings.Contains(err.Error(), "10 samples") {
		t.Errorf("unhelpful error: %v", err)
	}
}

// TestSessionSanitizerCounts: malformed monitored samples are dropped and
// counted, never fed to the detector, and never kill the stream.
func TestSessionSanitizerCounts(t *testing.T) {
	const profileN = 2000
	sess, err := NewSession(StreamSpec{VM: "x", ProfileSeconds: 20})
	if err != nil {
		t.Fatal(err)
	}
	feedSynth(t, sess, 0, profileN+100, 0.01, 100)
	bad := []pcm.Sample{
		{T: math.NaN(), Access: 100, Miss: 10},
		{T: 21.02, Access: -5, Miss: 1},
		{T: 21.03, Access: 10, Miss: 20}, // miss > access
	}
	for _, s := range bad {
		if err := sess.Observe(s); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := sess.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Dropped != uint64(len(bad)) {
		t.Errorf("dropped = %d, want %d", stats.Dropped, len(bad))
	}
}

// TestSessionAlarmCallbackError: a failing OnAlarm poisons the session.
func TestSessionAlarmCallbackError(t *testing.T) {
	const profileN = 2000
	sess, err := NewSession(StreamSpec{
		VM:             "x",
		ProfileSeconds: 20,
		OnAlarm:        func(detect.Alarm) error { return fmt.Errorf("sink broken") },
	})
	if err != nil {
		t.Fatal(err)
	}
	feedSynth(t, sess, 0, profileN, 0.01, 100)
	// Collapse the counters far outside the profiled bounds until the
	// detector alarms and the callback error surfaces.
	var cbErr error
	for i := profileN; i < profileN+6000; i++ {
		if cbErr = sess.Observe(synthSample(i, 0.01, 5)); cbErr != nil {
			break
		}
	}
	if cbErr == nil || !strings.Contains(cbErr.Error(), "sink broken") {
		t.Fatalf("OnAlarm error not surfaced (err=%v)", cbErr)
	}
	if err := sess.Observe(synthSample(0, 0.01, 5)); err == nil {
		t.Error("poisoned session accepted another sample")
	}
}

// TestSessionAlarmAtProfileBoundary: an attack that begins exactly at the
// profile/monitor boundary is detected — the boundary sample opens the
// monitored stage instead of leaking into the profile, so no attacked
// telemetry trains the baseline and the alarm lands shortly after the
// boundary, never before it.
func TestSessionAlarmAtProfileBoundary(t *testing.T) {
	const profileSeconds = 60.0
	var buf bytes.Buffer
	if _, err := WriteSimulatedStream(&buf, ReplaySpec{
		App: "kmeans", Seconds: 120, AttackAt: profileSeconds, Seed: 7,
	}); err != nil {
		t.Fatal(err)
	}
	var alarms []detect.Alarm
	sess, err := NewSession(StreamSpec{
		VM: "boundary", App: "kmeans", Scheme: "sds", ProfileSeconds: profileSeconds,
		OnAlarm: func(a detect.Alarm) error { alarms = append(alarms, a); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	r := feed.NewReader(&buf)
	for {
		smp, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := sess.Observe(smp); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := sess.Close()
	if err != nil {
		t.Fatal(err)
	}
	// The window [0.01, 60.01) holds exactly 6000 samples; sample 6001 at
	// t=60.01 is the first monitored one.
	if stats.ProfileSamples != 6000 {
		t.Errorf("profile holds %d samples, want 6000", stats.ProfileSamples)
	}
	if stats.Monitored != 6000 {
		t.Errorf("monitored %d samples, want 6000", stats.Monitored)
	}
	if len(alarms) == 0 {
		t.Fatal("attack starting at the profile boundary was not detected")
	}
	for _, a := range alarms {
		if a.T <= profileSeconds {
			t.Errorf("alarm at t=%g predates the monitored stage", a.T)
		}
	}
}
