package experiment

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/memdos/sds/internal/cloudsim"
	"github.com/memdos/sds/internal/workload"
)

func cloudBase() cloudsim.Scenario {
	return cloudsim.Scenario{
		Name:           "grid",
		Hosts:          4,
		VMsPerHost:     3,
		Seconds:        450,
		Apps:           []string{workload.KMeans, workload.FaceNet},
		ProfileSeconds: 400,
		Attackers:      1,
		AttackKind:     cloudsim.AttackBusLock,
		AttackStart:    60,
		RelocateMean:   80,
	}
}

// TestCloudGridParallelDeterminism pins the engine-pool contract for cloud
// cells: the grid is byte-identical at any worker count.
func TestCloudGridParallelDeterminism(t *testing.T) {
	policies := []string{cloudsim.PolicyNone, cloudsim.PolicyThrottleMigrate}
	cfg := DefaultConfig()
	cfg.Runs = 3
	cfg.Parallel = 1
	serial, err := cfg.CloudGrid(cloudBase(), policies)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallel = 4
	pooled, err := cfg.CloudGrid(cloudBase(), policies)
	if err != nil {
		t.Fatal(err)
	}
	a, err := json.Marshal(serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(pooled)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("cloud grid differs across worker counts:\n serial %s\n pooled %s", a, b)
	}
}

// TestSummarizeCloudScoresPolicies checks the policy comparison: the
// mitigating policy must recover a positive share of the baseline's victim
// slowdown and actually quarantine attackers.
func TestSummarizeCloudScoresPolicies(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Runs = 3
	cells, err := cfg.CloudGrid(cloudBase(), []string{cloudsim.PolicyNone, cloudsim.PolicyMigrate})
	if err != nil {
		t.Fatal(err)
	}
	summaries := SummarizeCloud(cells)
	if len(summaries) != 2 || summaries[0].Policy != cloudsim.PolicyNone || summaries[1].Policy != cloudsim.PolicyMigrate {
		t.Fatalf("unexpected summary layout: %+v", summaries)
	}
	none, mig := summaries[0], summaries[1]
	if none.Runs != 3 || mig.Runs != 3 {
		t.Fatalf("run counts wrong: %+v", summaries)
	}
	if none.Migrations != 0 || none.SlowdownRecovered != 0 {
		t.Fatalf("baseline must not migrate or recover: %+v", none)
	}
	if mig.Quarantines == 0 || mig.TimeToQuarantine.N == 0 {
		t.Fatalf("mitigating policy never quarantined: %+v", mig)
	}
	if mig.SlowdownRecovered <= 0 || mig.SlowdownRecovered > 1 {
		t.Fatalf("slowdown recovery out of range: %+v", mig)
	}
	if mig.ExposureSec >= none.ExposureSec {
		t.Fatalf("mitigation did not reduce exposure: %+v vs %+v", mig, none)
	}
	if mig.FalseMigrationRate < 0 || mig.FalseMigrationRate > 1 {
		t.Fatalf("false-migration rate out of range: %+v", mig)
	}
}

func TestCloudGridRejectsEmptyPolicies(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Runs = 1
	if _, err := cfg.CloudGrid(cloudBase(), nil); err == nil {
		t.Fatal("empty policy list accepted")
	}
}
