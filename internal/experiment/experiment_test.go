package experiment

import (
	"strings"
	"testing"

	"github.com/memdos/sds/internal/attack"
	"github.com/memdos/sds/internal/randx"
	"github.com/memdos/sds/internal/workload"
)

// fastConfig trims run counts and durations so tests stay quick while
// preserving the harness mechanics.
func fastConfig() Config {
	c := DefaultConfig()
	c.Runs = 2
	c.ProfileSeconds = 600
	c.StageSeconds = 150
	return c
}

// rng derives a test random stream from the config seed.
func (c Config) rng(label string) *randx.Rand {
	return randx.DeriveString(c.Seed, label)
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.Runs = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero runs accepted")
	}
	bad = DefaultConfig()
	bad.RampMax = bad.RampMin - 1
	if err := bad.Validate(); err == nil {
		t.Error("inverted ramp range accepted")
	}
}

func TestSchemesFor(t *testing.T) {
	// Non-periodic apps: the paper pair (SDS, KStest) plus the detector zoo.
	if got := SchemesFor(workload.KMeans); len(got) != 5 {
		t.Fatalf("non-periodic schemes = %v", got)
	}
	// Periodic apps additionally run the SDS/B and SDS/P components.
	if got := SchemesFor(workload.FaceNet); len(got) != 7 {
		t.Fatalf("periodic schemes = %v", got)
	}
}

func TestDetectionRunSDS(t *testing.T) {
	c := fastConfig()
	out, err := c.DetectionRun(workload.KMeans, attack.BusLock, SchemeSDS, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Detected {
		t.Fatalf("SDS missed the attack: %+v", out)
	}
	if out.Recall < 0.5 {
		t.Fatalf("recall = %v", out.Recall)
	}
	if out.Delay < 15 {
		t.Fatalf("delay %v below SDS floor of 15 s", out.Delay)
	}
}

func TestDetectionRunDeterminism(t *testing.T) {
	c := fastConfig()
	a, err := c.DetectionRun(workload.Bayes, attack.Cleanse, SchemeSDS, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.DetectionRun(workload.Bayes, attack.Cleanse, SchemeSDS, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("identical runs differ: %+v vs %+v", a, b)
	}
}

func TestDetectionRunKSTestThrottleLoop(t *testing.T) {
	c := fastConfig()
	out, err := c.DetectionRun(workload.KMeans, attack.BusLock, SchemeKSTest, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Detected {
		t.Fatalf("KStest missed the attack: %+v", out)
	}
}

func TestDetectionRunSDSPRequiresPeriodicApp(t *testing.T) {
	c := fastConfig()
	if _, err := c.DetectionRun(workload.KMeans, attack.BusLock, SchemeSDSP, 0); err == nil {
		t.Fatal("SDS/P on a non-periodic app accepted")
	}
}

func TestAccuracyCells(t *testing.T) {
	c := fastConfig()
	cells, err := c.Accuracy([]string{workload.KMeans})
	if err != nil {
		t.Fatal(err)
	}
	// k-means: 2 attacks × 5 schemes (paper pair + zoo).
	if len(cells) != 10 {
		t.Fatalf("got %d cells, want 10", len(cells))
	}
	for _, cell := range cells {
		if cell.Recall.Median < 50 {
			t.Errorf("%s/%v/%s: recall median %v", cell.App, cell.Attack, cell.Scheme, cell.Recall.Median)
		}
		if cell.DetectionRate == 0 {
			t.Errorf("%s/%v/%s: nothing detected", cell.App, cell.Attack, cell.Scheme)
		}
	}
}

func TestOverheadModel(t *testing.T) {
	c := fastConfig()
	c.Runs = 10
	cells, err := c.Overhead([]string{workload.KMeans, workload.FaceNet})
	if err != nil {
		t.Fatal(err)
	}
	bySchemeApp := make(map[string]OverheadCell)
	for _, cell := range cells {
		bySchemeApp[cell.App+"/"+string(cell.Scheme)] = cell
		if cell.Normalized.Median < 1 {
			t.Errorf("%s/%s: normalized %v < 1", cell.App, cell.Scheme, cell.Normalized.Median)
		}
	}
	sds := bySchemeApp[workload.KMeans+"/SDS"].Normalized.Median
	ks := bySchemeApp[workload.KMeans+"/KStest"].Normalized.Median
	// Fig. 12 shape: SDS ≈ 1.01–1.02, KStest ≈ 1.03–1.08.
	if sds < 1.005 || sds > 1.03 {
		t.Errorf("SDS overhead median %v, want ≈1.01–1.02", sds)
	}
	if ks < 1.03 || ks > 1.09 {
		t.Errorf("KStest overhead median %v, want ≈1.03–1.08", ks)
	}
	if ks <= sds {
		t.Errorf("KStest overhead %v not above SDS %v", ks, sds)
	}
}

func TestOverheadRunNoDetection(t *testing.T) {
	c := fastConfig()
	v, err := c.OverheadRun(workload.Bayes, SchemeNone, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v < 1 || v > 1.01 {
		t.Fatalf("no-detection normalized time = %v, want ≈1", v)
	}
}

func TestKStestIntervalsFig1(t *testing.T) {
	c := fastConfig()
	ivs, err := c.KStestIntervals(workload.TeraSort, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != 10 {
		t.Fatalf("got %d intervals", len(ivs))
	}
	declared := 0
	for _, iv := range ivs {
		if len(iv.Checks) < 5 {
			t.Fatalf("interval %d has only %d checks", iv.Index, len(iv.Checks))
		}
		if iv.Declared {
			declared++
		}
	}
	// Fig. 1: most TeraSort intervals falsely declare an attack.
	if declared < 5 {
		t.Fatalf("only %d/10 TeraSort intervals declared; the paper reports >60%%", declared)
	}
}

func TestKStestFalseAlarmRatesMatchPaperShape(t *testing.T) {
	c := DefaultConfig()
	res, err := c.KStestFalseAlarms([]string{workload.KMeans, workload.TeraSort}, 20)
	if err != nil {
		t.Fatal(err)
	}
	rates := make(map[string]float64, len(res))
	for _, r := range res {
		rates[r.App] = r.Rate
	}
	// Shape: TeraSort ≫ k-means, as in §3.2 (60% vs 20%).
	if rates[workload.TeraSort] <= rates[workload.KMeans] {
		t.Fatalf("TeraSort rate %v not above k-means %v", rates[workload.TeraSort], rates[workload.KMeans])
	}
	if rates[workload.TeraSort] < 0.4 {
		t.Fatalf("TeraSort rate %v, want ≥ 0.4", rates[workload.TeraSort])
	}
	if rates[workload.KMeans] > 0.5 {
		t.Fatalf("k-means rate %v, want ≤ 0.5", rates[workload.KMeans])
	}
}

func TestAttackTraceObservations(t *testing.T) {
	c := fastConfig()
	// Observation 1, bus-lock half: AccessNum drops.
	tr, err := c.AttackTrace(workload.TeraSort, attack.BusLock, 120)
	if err != nil {
		t.Fatal(err)
	}
	if tr.MeanAfter > 0.7*tr.MeanBefore {
		t.Fatalf("bus lock: mean %v → %v, want a clear drop", tr.MeanBefore, tr.MeanAfter)
	}
	// Observation 1, cleansing half: MissNum rises.
	tr, err = c.AttackTrace(workload.TeraSort, attack.Cleanse, 120)
	if err != nil {
		t.Fatal(err)
	}
	if tr.MeanAfter < 1.5*tr.MeanBefore {
		t.Fatalf("cleansing: mean %v → %v, want a clear rise", tr.MeanBefore, tr.MeanAfter)
	}
	// Observation 2: the periodic apps' period stretches.
	tr, err = c.AttackTrace(workload.FaceNet, attack.BusLock, 120)
	if err != nil {
		t.Fatal(err)
	}
	if tr.PeriodBefore == 0 || tr.PeriodAfter == 0 {
		t.Fatalf("FaceNet periods not detected: %d → %d", tr.PeriodBefore, tr.PeriodAfter)
	}
	if float64(tr.PeriodAfter) < 1.15*float64(tr.PeriodBefore) {
		t.Fatalf("FaceNet period %d → %d, want ≥15%% stretch", tr.PeriodBefore, tr.PeriodAfter)
	}
	if _, err := c.AttackTrace(workload.Bayes, attack.None, 120); err == nil {
		t.Fatal("trace without attack accepted")
	}
}

func TestSDSBExampleFig7(t *testing.T) {
	c := fastConfig()
	res, err := c.SDSBExample(workload.KMeans, 200)
	if err != nil {
		t.Fatal(err)
	}
	if res.AlarmWindow < 0 {
		t.Fatal("Fig. 7 example never alarmed")
	}
	if res.AlarmTime < res.AttackStart {
		t.Fatalf("alarm at %v before attack start %v", res.AlarmTime, res.AttackStart)
	}
	if res.Lower >= res.Upper {
		t.Fatalf("bounds inverted: [%v, %v]", res.Lower, res.Upper)
	}
	if len(res.Windows) == 0 {
		t.Fatal("no window trace recorded")
	}
}

func TestSDSPExampleFig8(t *testing.T) {
	c := fastConfig()
	res, err := c.SDSPExample(workload.FaceNet, 300)
	if err != nil {
		t.Fatal(err)
	}
	if res.NormalPeriod < 14 || res.NormalPeriod > 20 {
		t.Fatalf("normal period %d, want ≈17 (paper Fig. 8)", res.NormalPeriod)
	}
	if res.AlarmTime < 0 {
		t.Fatal("Fig. 8 example never alarmed")
	}
	if len(res.Estimates) == 0 || len(res.MA) == 0 {
		t.Fatal("missing traces")
	}
	if _, err := c.SDSPExample(workload.Bayes, 300); err == nil {
		t.Fatal("SDS/P example on non-periodic app accepted")
	}
}

func TestSweepMechanics(t *testing.T) {
	c := fastConfig()
	c.Runs = 1
	points, err := c.SweepAlpha(workload.KMeans, []float64{0.2, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 || points[0].Value != 0.2 {
		t.Fatalf("points = %+v", points)
	}
	for _, p := range points {
		if p.Recall.N == 0 || p.Specificity.N == 0 {
			t.Fatalf("empty distributions at %v", p.Value)
		}
	}
	if _, err := c.Sweep(workload.KMeans, nil, nil); err == nil {
		t.Fatal("empty sweep accepted")
	}
	// An invalid parameter value must surface as an error.
	if _, err := c.SweepAlpha(workload.KMeans, []float64{2}); err == nil {
		t.Fatal("alpha=2 accepted")
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{Title: "demo", Header: []string{"a", "b"}}
	tb.AddRow("x", 1.2345)
	tb.AddRow("longer-cell", "v,w")
	var text, csv strings.Builder
	if err := tb.Render(&text); err != nil {
		t.Fatal(err)
	}
	if err := tb.CSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "demo") || !strings.Contains(text.String(), "1.23") {
		t.Fatalf("text output:\n%s", text.String())
	}
	if !strings.Contains(csv.String(), `"v,w"`) {
		t.Fatalf("csv output:\n%s", csv.String())
	}
	if got := distCell(10, 5, 15); got != "10.0 [5.0, 15.0]" {
		t.Fatalf("distCell = %q", got)
	}
}
