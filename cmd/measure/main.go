// Command measure reproduces the paper's measurement study (§3):
//
//	measure -falsealarms   §3.2 KStest false-alarm rates per application
//	measure -fig1          Fig. 1: KStest 0/1 check series on TeraSort
//	measure -traces        Figs. 2–6: attack impact on every application
//	measure -fig7          Fig. 7: SDS/B walk-through on k-means
//	measure -fig8          Fig. 8: SDS/P walk-through on FaceNet
//	measure -exploration   §3.4: the rejected correlation approaches
//	measure -defense       §2.3: way partitioning vs both attacks
//	measure -migration     intro/§6: migration against a re-co-locating attacker
//	measure -microsim      first-principles check on the cache/bus simulator
//	measure -microdetect   end-to-end SDS/B over simulated hardware counters
//	measure -interference  §6: benign noisy-neighbour detection
//	measure -all           everything above
//
// Use -csvdir to additionally export raw series as CSV for plotting.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/memdos/sds/internal/attack"
	"github.com/memdos/sds/internal/cachesim"
	"github.com/memdos/sds/internal/experiment"
	"github.com/memdos/sds/internal/membus"
	"github.com/memdos/sds/internal/randx"
	"github.com/memdos/sds/internal/timeseries"
	"github.com/memdos/sds/internal/vmm"
	"github.com/memdos/sds/internal/workload"
)

func main() {
	var (
		fig1        = flag.Bool("fig1", false, "Fig. 1: KStest intervals on TeraSort without attack")
		falseAlarms = flag.Bool("falsealarms", false, "§3.2: KStest false-alarm rate per application")
		traces      = flag.Bool("traces", false, "Figs. 2–6: attack-impact traces for every application")
		fig7        = flag.Bool("fig7", false, "Fig. 7: SDS/B detection example on k-means")
		fig8        = flag.Bool("fig8", false, "Fig. 8: SDS/P detection example on FaceNet")
		exploration = flag.Bool("exploration", false, "§3.4: rejected correlation approaches")
		defense     = flag.Bool("defense", false, "§2.3: cache partitioning stops cleansing but not bus locking")
		migration   = flag.Bool("migration", false, "intro/§6: migration-on-alarm with attacker re-co-location")
		microsim    = flag.Bool("microsim", false, "micro-architectural first-principles check")
		microdetect = flag.Bool("microdetect", false, "end-to-end SDS/B detection on the micro-architectural simulator")
		interfere   = flag.Bool("interference", false, "§6: benign noisy-neighbour interference detection")
		all         = flag.Bool("all", false, "run every measurement")
		seed        = flag.Uint64("seed", 1, "experiment seed")
		intervals   = flag.Int("intervals", 20, "number of L_R intervals for the KStest studies")
		csvdir      = flag.String("csvdir", "", "directory for CSV exports (optional)")
	)
	flag.Parse()
	if !(*fig1 || *falseAlarms || *traces || *fig7 || *fig8 || *exploration || *defense || *migration || *microsim || *microdetect || *interfere || *all) {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(runFlags{
		fig1:        *fig1 || *all,
		falseAlarms: *falseAlarms || *all,
		traces:      *traces || *all,
		fig7:        *fig7 || *all,
		fig8:        *fig8 || *all,
		exploration: *exploration || *all,
		defense:     *defense || *all,
		migration:   *migration || *all,
		microsim:    *microsim || *all,
		microdetect: *microdetect || *all,
		interfere:   *interfere || *all,
	}, *seed, *intervals, *csvdir); err != nil {
		fmt.Fprintln(os.Stderr, "measure:", err)
		os.Exit(1)
	}
}

type runFlags struct {
	fig1, falseAlarms, traces, fig7, fig8, exploration, defense, migration, microsim, microdetect, interfere bool
}

func run(flags runFlags, seed uint64, intervals int, csvdir string) error {
	cfg := experiment.DefaultConfig()
	cfg.Seed = seed

	if flags.fig1 {
		if err := runFig1(cfg, intervals); err != nil {
			return err
		}
	}
	if flags.falseAlarms {
		if err := runFalseAlarms(cfg, intervals); err != nil {
			return err
		}
	}
	if flags.traces {
		if err := runTraces(cfg, csvdir); err != nil {
			return err
		}
	}
	if flags.fig7 {
		if err := runFig7(cfg, csvdir); err != nil {
			return err
		}
	}
	if flags.fig8 {
		if err := runFig8(cfg, csvdir); err != nil {
			return err
		}
	}
	if flags.exploration {
		if err := runExploration(cfg); err != nil {
			return err
		}
	}
	if flags.defense {
		if err := runDefense(cfg); err != nil {
			return err
		}
	}
	if flags.migration {
		if err := runMigration(cfg); err != nil {
			return err
		}
	}
	if flags.microsim {
		if err := runMicrosim(); err != nil {
			return err
		}
	}
	if flags.microdetect {
		if err := runMicroDetect(seed); err != nil {
			return err
		}
	}
	if flags.interfere {
		if err := runInterference(seed); err != nil {
			return err
		}
	}
	return nil
}

// runInterference reproduces the §6 broader-impact scenario: a benign but
// cache-hungry neighbour lands next to each protected VM.
func runInterference(seed uint64) error {
	results, err := experiment.MicroConfig{Seed: seed}.InterferenceStudyAll(nil)
	if err != nil {
		return err
	}
	tb := experiment.Table{
		Title:  "§6 — benign noisy-neighbour interference (micro-architectural simulator)",
		Header: []string{"application", "miss rate before", "miss rate during", "detected", "delay (s)"},
	}
	for _, r := range results {
		delay := "-"
		if r.Delay >= 0 {
			delay = fmt.Sprintf("%.2f", r.Delay)
		}
		tb.AddRow(r.App, fmt.Sprintf("%.4f", r.MissRateBefore), fmt.Sprintf("%.4f", r.MissRateDuring),
			fmt.Sprintf("%v", r.Detected), delay)
	}
	if err := tb.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println("  → SDS flags benign contention too; the provider can respond (e.g. migrate) — §6.")
	fmt.Println()
	return nil
}

// runMicroDetect runs the end-to-end pipeline — simulated hardware, PCM
// monitor, Stage-1 profiling, SDS/B — for every application and attack, at
// 1/10 time scale.
func runMicroDetect(seed uint64) error {
	tb := experiment.Table{
		Title:  "End-to-end SDS/B on the micro-architectural simulator (1/10 time scale)",
		Header: []string{"application", "attack", "detected", "delay (s)", "false alarms"},
	}
	for _, app := range workload.AppNames() {
		for _, kind := range []attack.Kind{attack.BusLock, attack.Cleanse} {
			res, err := experiment.MicroConfig{App: app, AttackKind: kind, Seed: seed}.MicroDetectionRun()
			if err != nil {
				return err
			}
			delay := "-"
			if res.Detected {
				delay = fmt.Sprintf("%.2f", res.Delay)
			}
			tb.AddRow(app, kind.String(), fmt.Sprintf("%v", res.Detected), delay, res.FalseAlarms)
		}
	}
	if err := tb.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	return nil
}

func runDefense(cfg experiment.Config) error {
	results, err := cfg.DefenseStudy()
	if err != nil {
		return err
	}
	tb := experiment.Table{
		Title:  "§2.3 — way-partitioning defense vs both attacks (micro-architectural simulator)",
		Header: []string{"attack", "partitioned", "victim miss rate", "victim access rate (/s)", "victim progress"},
	}
	for _, r := range results {
		tb.AddRow(r.Attack.String(), fmt.Sprintf("%v", r.Partitioned),
			fmt.Sprintf("%.4f", r.MissRate),
			fmt.Sprintf("%.3g", r.AccessRate),
			fmt.Sprintf("%.0f%%", 100*r.ProgressRatio))
	}
	if err := tb.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println("  → partitioning suppresses LLC cleansing but cannot unblock the locked bus (§2.3).")
	fmt.Println()
	return nil
}

func runMigration(cfg experiment.Config) error {
	study := experiment.MigrationStudyConfig{} // defaults: 30 min, k-means, bus locking
	rows := []struct {
		policy experiment.MigrationPolicy
		scheme experiment.Scheme
	}{
		{experiment.PolicyNone, ""},
		{experiment.PolicyOnAlarm, experiment.SchemeKSTest},
		{experiment.PolicyOnAlarm, experiment.SchemeSDS},
	}
	tb := experiment.Table{
		Title:  "intro/§6 — VM migration against a re-co-locating attacker (30 min scenario)",
		Header: []string{"policy", "detector", "time under attack", "avg slowdown", "migrations", "false migrations"},
	}
	for _, row := range rows {
		r, err := cfg.MigrationStudy(study, row.policy, row.scheme)
		if err != nil {
			return err
		}
		det := string(r.Scheme)
		if det == "" {
			det = "-"
		}
		tb.AddRow(string(r.Policy), det,
			fmt.Sprintf("%.0f%%", 100*r.UnderAttackFrac),
			fmt.Sprintf("%.0f%%", 100*r.AvgSlowdown),
			r.Migrations, r.FalseMigrations)
	}
	if err := tb.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println("  → migration alone cannot end the threat (the attacker re-co-locates in minutes);")
	fmt.Println("    fast detection bounds the victim's exposure per co-location.")
	fmt.Println()
	return nil
}

func runExploration(cfg experiment.Config) error {
	results, err := cfg.ExplorationStudy(nil)
	if err != nil {
		return err
	}
	tb := experiment.Table{
		Title:  "§3.4 — rejected approaches: correlation statistics before → during attack (no usable drop)",
		Header: []string{"application", "attack", "pearson", "cross-corr", "coherence"},
	}
	for _, r := range results {
		tb.AddRow(r.App, r.Attack.String(),
			fmt.Sprintf("%.2f → %.2f", r.PearsonBefore, r.PearsonAfter),
			fmt.Sprintf("%.2f → %.2f", r.CrossCorrBefore, r.CrossCorrAfter),
			fmt.Sprintf("%.2f → %.2f", r.CoherenceBefore, r.CoherenceAfter))
	}
	if err := tb.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	return nil
}

func runFig1(cfg experiment.Config, intervals int) error {
	ivs, err := cfg.KStestIntervals(workload.TeraSort, intervals)
	if err != nil {
		return err
	}
	fmt.Printf("Fig. 1 — KStest on TeraSort, no attack (%d L_R intervals of %.0f s)\n", intervals, cfg.KSTest.LR)
	declared := 0
	for _, iv := range ivs {
		marks := make([]byte, len(iv.Checks))
		for i, rejected := range iv.Checks {
			marks[i] = '0'
			if rejected {
				marks[i] = '1'
			}
		}
		verdict := " "
		if iv.Declared {
			verdict = "ATTACK DECLARED (false positive)"
			declared++
		}
		fmt.Printf("  interval %2d: %s  %s\n", iv.Index, marks, verdict)
	}
	fmt.Printf("  → %d/%d intervals (%.0f%%) falsely declare an attack; the paper reports >60%%.\n\n",
		declared, len(ivs), 100*float64(declared)/float64(len(ivs)))
	return nil
}

func runFalseAlarms(cfg experiment.Config, intervals int) error {
	res, err := cfg.KStestFalseAlarms(nil, intervals)
	if err != nil {
		return err
	}
	tb := experiment.Table{
		Title:  fmt.Sprintf("§3.2 — KStest false-alarm rate without attack (%d intervals)", intervals),
		Header: []string{"application", "declared", "rate", "paper"},
	}
	for _, r := range res {
		paper := experiment.PaperKStestFalseAlarmRate[r.App]
		tb.AddRow(r.App, fmt.Sprintf("%d/%d", r.Declared, r.Intervals),
			fmt.Sprintf("%.0f%%", 100*r.Rate), fmt.Sprintf("%.0f%%", 100*paper))
	}
	if err := tb.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	return nil
}

func runTraces(cfg experiment.Config, csvdir string) error {
	tb := experiment.Table{
		Title:  "Figs. 2–6 — attack impact (120 s runs, attack at 60 s)",
		Header: []string{"application", "attack", "metric", "mean before", "mean after", "change", "period before", "period after"},
	}
	for _, app := range workload.AppNames() {
		for _, kind := range []attack.Kind{attack.BusLock, attack.Cleanse} {
			tr, err := cfg.AttackTrace(app, kind, 120)
			if err != nil {
				return err
			}
			change := fmt.Sprintf("%+.0f%%", 100*(tr.MeanAfter/tr.MeanBefore-1))
			pb, pa := "-", "-"
			if tr.PeriodBefore > 0 {
				pb = fmt.Sprint(tr.PeriodBefore)
			}
			if tr.PeriodAfter > 0 {
				pa = fmt.Sprint(tr.PeriodAfter)
			}
			tb.AddRow(app, tr.Attack.String(), tr.Metric.String(),
				fmt.Sprintf("%.3g", tr.MeanBefore), fmt.Sprintf("%.3g", tr.MeanAfter), change, pb, pa)
			if csvdir != "" {
				name := fmt.Sprintf("trace_%s_%s.csv", app, strings.ReplaceAll(kind.String(), "-", ""))
				if err := writeCSV(csvdir, name, []string{"t", strings.ToLower(tr.Metric.String())}, tr.T, tr.Value); err != nil {
					return err
				}
			}
		}
	}
	if err := tb.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	return nil
}

func runFig7(cfg experiment.Config, csvdir string) error {
	res, err := cfg.SDSBExample(workload.KMeans, 200)
	if err != nil {
		return err
	}
	fmt.Printf("Fig. 7 — SDS/B on k-means (bus locking at %.0f s)\n", res.AttackStart)
	fmt.Printf("  normal range: [%.4g, %.4g]\n", res.Lower, res.Upper)
	if res.AlarmWindow >= 0 {
		fmt.Printf("  alarm at window %d (t=%.1f s, %.1f s after attack start)\n\n",
			res.AlarmWindow, res.AlarmTime, res.AlarmTime-res.AttackStart)
	} else {
		fmt.Printf("  no alarm raised\n\n")
	}
	if csvdir != "" {
		t := make([]float64, len(res.Windows))
		ewma := make([]float64, len(res.Windows))
		for i, w := range res.Windows {
			t[i] = w.T
			ewma[i] = w.EWMAAccess
		}
		return writeCSV(csvdir, "fig7_kmeans_ewma.csv", []string{"t", "ewma_access"}, t, ewma)
	}
	return nil
}

func runFig8(cfg experiment.Config, csvdir string) error {
	res, err := cfg.SDSPExample(workload.FaceNet, 300)
	if err != nil {
		return err
	}
	fmt.Printf("Fig. 8 — SDS/P on FaceNet (bus locking at %.0f s)\n", res.AttackStart)
	fmt.Printf("  normal period: %d MA windows (paper: ≈%d)\n", res.NormalPeriod, experiment.PaperFaceNetPeriod)
	fmt.Print("  computed periods: ")
	for _, e := range res.Estimates {
		if e.Found {
			fmt.Printf("%d ", e.Period)
		} else {
			fmt.Print("? ")
		}
	}
	fmt.Println()
	if res.AlarmTime >= 0 {
		fmt.Printf("  alarm at t=%.1f s (%.1f s after attack start)\n\n", res.AlarmTime, res.AlarmTime-res.AttackStart)
	} else {
		fmt.Printf("  no alarm raised\n\n")
	}
	if csvdir != "" {
		t := make([]float64, len(res.Estimates))
		period := make([]float64, len(res.Estimates))
		for i, e := range res.Estimates {
			t[i] = e.T
			period[i] = float64(e.Period)
		}
		return writeCSV(csvdir, "fig8_facenet_period.csv", []string{"t", "period"}, t, period)
	}
	return nil
}

// runMicrosim demonstrates Observations (1) and (2) on the
// micro-architectural simulator rather than the telemetry models.
func runMicrosim() error {
	fmt.Println("Micro-architectural check — shared LLC + bus, access streams")

	measure := func(extra vmm.Workload) (accessRate, missRate float64, err error) {
		cache, err := cachesim.New(cachesim.Config{SizeBytes: 512 * 1024, LineSize: 64, Ways: 8})
		if err != nil {
			return 0, 0, err
		}
		bus, err := membus.New(2e6, 0.95)
		if err != nil {
			return 0, 0, err
		}
		m, err := vmm.NewMachine(cache, bus)
		if err != nil {
			return 0, 0, err
		}
		victim, err := workload.NewLoop("victim", 0, 64*1024, 5e5, randx.New(1, 2))
		if err != nil {
			return 0, 0, err
		}
		vvm, err := m.AddVM("victim", victim)
		if err != nil {
			return 0, 0, err
		}
		if extra != nil {
			if _, err := m.AddVM(extra.Name(), extra); err != nil {
				return 0, 0, err
			}
		}
		if err := m.Run(10, 0.01); err != nil {
			return 0, 0, err
		}
		st, err := m.CacheStats(vvm.ID())
		if err != nil {
			return 0, 0, err
		}
		return float64(st.Accesses) / 10, float64(st.Misses) / float64(st.Accesses), nil
	}

	baseA, baseM, err := measure(nil)
	if err != nil {
		return err
	}
	locker, err := attack.NewBusLocker(0, 0.9, randx.New(3, 4))
	if err != nil {
		return err
	}
	lockA, _, err := measure(locker)
	if err != nil {
		return err
	}
	cleanser, err := attack.NewCleanser(0, 1e6, randx.New(5, 6))
	if err != nil {
		return err
	}
	_, cleanseM, err := measure(cleanser)
	if err != nil {
		return err
	}

	fmt.Printf("  victim LLC access rate: %.3g/s alone → %.3g/s under bus locking (%.0f%% drop)\n",
		baseA, lockA, 100*(1-lockA/baseA))
	fmt.Printf("  victim miss rate:       %.4f alone → %.4f under LLC cleansing (%.1fx)\n\n",
		baseM, cleanseM, cleanseM/max(baseM, 1e-9))
	return nil
}

func writeCSV(dir, name string, headers []string, cols ...[]float64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := timeseries.WriteCSV(f, headers, cols...); err != nil {
		return err
	}
	return f.Close()
}
