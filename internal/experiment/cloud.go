package experiment

import (
	"fmt"

	"github.com/memdos/sds/internal/cloudsim"
	"github.com/memdos/sds/internal/metrics"
	"github.com/memdos/sds/internal/randx"
)

// The cloud-scale grid: the event-driven datacenter engine replaces the
// single-host lockstep loop, so one cell is an entire cluster run —
// attacker campaigns, churn and the provider's closed mitigation loop —
// and the grid compares mitigation policies on matched randomness.

// CloudCell is one (policy, run) cell of a cloud grid.
type CloudCell struct {
	// Policy is the mitigation policy this cell ran under.
	Policy string `json:"policy"`
	// Run is the repetition index; equal runs share a derived seed across
	// policies, so policy columns are paired (common random numbers).
	Run int `json:"run"`
	// Result is the full scored cluster run.
	Result cloudsim.Result `json:"result"`
}

// CloudPolicySummary pools one policy's cells and scores it against the
// PolicyNone baseline of the same grid.
type CloudPolicySummary struct {
	// Policy is the mitigation policy summarized.
	Policy string `json:"policy"`
	// Runs is the number of pooled repetitions.
	Runs int `json:"runs"`
	// VictimSlowdown is the mean victim slowdown across runs.
	VictimSlowdown float64 `json:"victim_slowdown"`
	// SlowdownRecovered is the fraction of the baseline's victim slowdown
	// this policy eliminated (0 when the grid has no PolicyNone column).
	SlowdownRecovered float64 `json:"slowdown_recovered"`
	// ExposureSec is the mean victim attack exposure across runs.
	ExposureSec float64 `json:"exposure_sec"`
	// FalseMigrationRate is pooled false migrations over pooled migrations.
	FalseMigrationRate float64 `json:"false_migration_rate"`
	// Migrations and Quarantines are pooled counts.
	Migrations  int `json:"migrations"`
	Quarantines int `json:"quarantines"`
	// TimeToQuarantine summarizes the per-run median times to quarantine.
	TimeToQuarantine metrics.Distribution `json:"time_to_quarantine"`
}

// CloudGrid runs the base scenario under every policy × run cell on the
// experiment worker pool. Cells are independently seeded from (Seed, run),
// so results are bit-identical at any Parallel setting, and the same run
// index reuses its seed across policies.
func (c Config) CloudGrid(base cloudsim.Scenario, policies []string) ([]CloudCell, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if len(policies) == 0 {
		return nil, fmt.Errorf("experiment: CloudGrid needs at least one policy")
	}
	n := len(policies) * c.Runs
	return parallelMap(c.workers(), n, func(i int) (CloudCell, error) {
		policy, run := policies[i/c.Runs], i%c.Runs
		sc := base
		sc.Seed = randx.Derive(c.Seed, uint64(run)).Uint64()
		sc.Mitigation.Policy = policy
		sc.Name = fmt.Sprintf("%s/%s/run%d", base.Name, policy, run)
		res, err := cloudsim.Run(sc)
		if err != nil {
			return CloudCell{}, fmt.Errorf("cloud cell %s: %w", sc.Name, err)
		}
		return CloudCell{Policy: policy, Run: run, Result: res}, nil
	})
}

// SummarizeCloud pools grid cells per policy, in first-seen policy order.
// The PolicyNone column, when present, is the slowdown-recovery baseline.
func SummarizeCloud(cells []CloudCell) []CloudPolicySummary {
	var order []string
	groups := make(map[string][]CloudCell)
	for _, cell := range cells {
		if _, ok := groups[cell.Policy]; !ok {
			order = append(order, cell.Policy)
		}
		groups[cell.Policy] = append(groups[cell.Policy], cell)
	}

	baseline := 0.0
	if none := groups[cloudsim.PolicyNone]; len(none) > 0 {
		for _, cell := range none {
			baseline += cell.Result.VictimSlowdown
		}
		baseline /= float64(len(none))
	}

	out := make([]CloudPolicySummary, 0, len(order))
	for _, policy := range order {
		cells := groups[policy]
		s := CloudPolicySummary{Policy: policy, Runs: len(cells)}
		falseMigs := 0
		var ttqMedians []float64
		for _, cell := range cells {
			r := cell.Result
			s.VictimSlowdown += r.VictimSlowdown
			s.ExposureSec += r.VictimExposureSec
			s.Migrations += r.Migrations
			s.Quarantines += r.QuarantineCount
			falseMigs += r.FalseMigrations
			if r.TimeToQuarantine.N > 0 {
				ttqMedians = append(ttqMedians, r.TimeToQuarantine.Median)
			}
		}
		s.VictimSlowdown /= float64(len(cells))
		s.ExposureSec /= float64(len(cells))
		if s.Migrations > 0 {
			s.FalseMigrationRate = float64(falseMigs) / float64(s.Migrations)
		}
		if baseline > 0 {
			s.SlowdownRecovered = 1 - s.VictimSlowdown/baseline
		}
		s.TimeToQuarantine = metrics.Summarize(ttqMedians)
		out = append(out, s)
	}
	return out
}
