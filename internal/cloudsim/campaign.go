package cloudsim

import (
	"strconv"

	"github.com/memdos/sds/internal/attack"
)

// Attacker campaigns and benign co-residency churn: the event handlers that
// move VMs around the cluster.

// handleArrive creates one churn VM, places it, and schedules both its
// departure and the next arrival (a Poisson arrival process with
// exponential lifetimes). Churn VMs are unmonitored load: they shift
// placement decisions and co-residency, and absorb throttles and attacks
// like any other benign VM.
func (e *engine) handleArrive(now float64) {
	id := len(e.vms)
	app := e.sc.Apps[e.churnSeq%len(e.sc.Apps)]
	e.churnSeq++
	v := &vm{
		id:   id,
		name: "vm" + strconv.Itoa(id),
		role: roleBenign,
		app:  app,
		prof: e.appProfs[app],
		host: -1,
	}
	e.vms = append(e.vms, v)
	e.res.Churned++
	e.pickHost(-1).add(v, now)
	e.push(event{tick: e.tickFor(now + e.churnRng.Exp(e.sc.ChurnLifetimeMean)), kind: evDepart, host: -1, vm: int32(id)})
	e.push(event{tick: e.tickFor(now + e.churnRng.Exp(60/e.sc.ChurnArrivalsPerMin)), kind: evArrive, host: -1, vm: -1})
}

// handleDepart retires a churn VM, folding its accounting into the totals.
func (e *engine) handleDepart(v *vm) {
	if v.host < 0 {
		return
	}
	e.fold(v)
	e.hosts[v.host].remove(v)
}

// handlePlace co-locates an attacker with its current target and starts a
// new attack episode. The schedule's start is the exact (unquantized)
// relocation time stored at scheduling, so ramps are not perturbed by
// event-tick rounding — the equivalence test depends on this.
func (e *engine) handlePlace(a *vm, now float64) {
	if a.host >= 0 {
		e.hosts[a.host].remove(a)
	}
	tgt := e.vms[a.target]
	e.hosts[tgt.host].add(a, now)
	ramp := e.sc.AttackRamp
	if ramp == 0 {
		ramp = e.campRng.Uniform(e.sc.RampMin, e.sc.RampMax)
	}
	a.sched = attack.Schedule{Kind: a.kind, Start: a.nextStart, Ramp: ramp,
		Strategy: e.attackStrategy(tgt)}
	a.attacking = true
	a.episodeStart = a.nextStart
	if e.sc.DwellMean > 0 {
		e.push(event{tick: e.tickFor(now + e.campRng.Exp(e.sc.DwellMean)), kind: evHop, host: -1, vm: int32(a.id)})
	}
}

// attackStrategy builds the scenario's evasive strategy for an episode
// against the given target: the duty cycle is tuned against the configured
// detector's streak geometry, and the period mimic phase-locks to the
// target's profiled period (the attacker is assumed to have profiled its
// victim — the strongest adversary). Pure in the engine's random streams,
// so attaching a strategy never perturbs placement or churn draws.
func (e *engine) attackStrategy(tgt *vm) attack.Strategy {
	name := e.sc.AttackStrategy
	if name == "" || name == attack.StrategySteady {
		return nil
	}
	params := attack.StrategyParams{
		WindowStep: float64(e.sc.Detect.DW) * e.sc.Detect.TPCM,
		HC:         e.sc.Detect.HC,
	}
	if tgt.prof.Periodic {
		params.VictimPeriod = tgt.prof.PeriodSec
	}
	st, err := attack.NamedStrategy(name, params)
	if err != nil {
		return nil // scenario validation rejects unknown names before here
	}
	return st
}

// handleHop ends an attacker's dwell on its current host mid-campaign: it
// stops attacking, leaves, retargets, and schedules its next co-location.
func (e *engine) handleHop(a *vm, now float64) {
	if !a.attacking {
		return // the episode already ended (the victim was migrated away)
	}
	a.sched.Stop = now
	a.attacking = false
	if a.host >= 0 {
		e.hosts[a.host].remove(a)
		a.paused = false
	}
	e.retarget(a)
	e.scheduleRelocate(a, now)
}

// retarget moves a campaigning attacker to a different victim (uniform over
// the others, from the campaign stream).
func (e *engine) retarget(a *vm) {
	n := len(e.victims)
	if n <= 1 {
		return
	}
	a.targetIdx = (a.targetIdx + 1 + e.campRng.IntN(n-1)) % n
	a.target = e.victims[a.targetIdx]
}

// scheduleRelocate queues the attacker's next co-location after an
// exponential relocation delay (finding and reaching the target's host
// takes time), recording the exact start time for the new schedule.
func (e *engine) scheduleRelocate(a *vm, now float64) {
	at := now + e.campRng.Exp(e.sc.RelocateMean)
	a.nextStart = at
	e.push(event{tick: e.tickFor(at), kind: evPlace, host: -1, vm: int32(a.id)})
}
