package workload

import (
	"fmt"
	"sort"
)

// Application names, matching the paper's measurement study (§3.1).
const (
	Bayes       = "bayes"       // HiBench Bayesian classification
	SVM         = "svm"         // HiBench support vector machine
	KMeans      = "kmeans"      // HiBench k-means clustering
	PCA         = "pca"         // HiBench principal components analysis (periodic)
	Aggregation = "aggregation" // Hive OLAP aggregation query
	Join        = "join"        // Hive OLAP join query
	Scan        = "scan"        // Hive OLAP scan query
	TeraSort    = "terasort"    // Hadoop TeraSort (strongly phased)
	PageRank    = "pagerank"    // HiBench web-search PageRank
	FaceNet     = "facenet"     // TensorFlow FaceNet training (periodic)
)

// AppNames lists all modelled applications in the paper's presentation
// order.
func AppNames() []string {
	return []string{
		Bayes, SVM, KMeans, PCA, Aggregation, Join, Scan, TeraSort, PageRank, FaceNet,
	}
}

// PeriodicApps lists the applications with periodic cache-access patterns.
func PeriodicApps() []string { return []string{PCA, FaceNet} }

// AppProfile returns the calibrated telemetry profile for a named
// application. The MeanPhaseDur values are derived from the paper's
// per-application KStest false-alarm rates (§3.2): a phase change within
// the first ~22 s after a reference collection makes the KS baseline
// reject for ≥4 consecutive checks, so a target rate r implies a mean
// phase duration of roughly 22/r seconds. The periodic applications defeat
// KStest through cycle-phase mismatch between reference and monitored
// windows instead.
func AppProfile(name string) (Profile, error) {
	p, ok := appProfiles[name]
	if !ok {
		known := make([]string, 0, len(appProfiles))
		for n := range appProfiles {
			known = append(known, n)
		}
		sort.Strings(known)
		return Profile{}, fmt.Errorf("workload: unknown application %q (known: %v)", name, known)
	}
	return p, nil
}

// MustAppProfile is AppProfile for the compiled-in names; it panics on
// unknown names and is intended for use with the App* constants.
func MustAppProfile(name string) Profile {
	p, err := AppProfile(name)
	if err != nil {
		panic(err)
	}
	return p
}

var appProfiles = map[string]Profile{
	Bayes:       phasedProfile(Bayes, 2.0e5, 0.20, 0.12, 80 /* → ~30% KStest FP */, 0.15),
	SVM:         phasedProfile(SVM, 1.8e5, 0.22, 0.15, 58 /* → ~35% */, 0.18),
	KMeans:      phasedProfile(KMeans, 2.2e5, 0.18, 0.10, 150 /* → ~20% */, 0.10),
	Aggregation: phasedProfile(Aggregation, 1.5e5, 0.20, 0.18, 62 /* → ~40% */, 0.16),
	Join:        phasedProfile(Join, 1.6e5, 0.20, 0.20, 62 /* → ~40% */, 0.16),
	Scan:        phasedProfile(Scan, 2.5e5, 0.18, 0.25, 70 /* → ~40% */, 0.15),
	TeraSort:    phasedProfile(TeraSort, 3.0e5, 0.22, 0.22, 34 /* → >60% */, 0.22),
	PageRank:    phasedProfile(PageRank, 2.0e5, 0.20, 0.15, 88 /* → ~30% */, 0.14),
	PCA:         periodicProfile(PCA, 1.6e5, 0.07, 0.12, 6.0 /* s */, 0.13 /* → ~60% */, 0.50),
	FaceNet:     periodicProfile(FaceNet, 1.7e5, 0.12, 0.14, 8.5 /* s → MA period 17 */, 0.12 /* → ~55% */, 0.55),
}

// phasedProfile assembles a non-periodic application profile.
func phasedProfile(name string, base, cv, missRatio, meanPhaseDur, phaseDelta float64) Profile {
	return Profile{
		Name:                name,
		BaseAccess:          base,
		AccessCV:            cv,
		MissRatio:           missRatio,
		MissCV:              0.10,
		PhaseDelta:          phaseDelta,
		MeanPhaseDur:        meanPhaseDur,
		BurstProb:           0.001,
		BurstDur:            20,
		BurstMag:            0.45,
		BusLockDrop:         0.60,
		CleanseMissGain:     missGainFor(missRatio),
		OverheadSensitivity: 1,
	}
}

// periodicProfile assembles a periodic application profile (PCA, FaceNet).
func periodicProfile(name string, base, cv, missRatio, periodSec, amp, stretch float64) Profile {
	return Profile{
		Name:                name,
		BaseAccess:          base,
		AccessCV:            cv,
		MissRatio:           missRatio,
		MissCV:              0.10,
		Periodic:            true,
		PeriodSec:           periodSec,
		PeriodAmp:           amp,
		PeriodJitter:        0.09,
		BurstProb:           0.001,
		BurstDur:            20,
		BurstMag:            0.55,
		BusLockDrop:         0.60,
		CleanseMissGain:     missGainFor(missRatio),
		PeriodStretch:       stretch,
		OverheadSensitivity: 1,
	}
}

// missGainFor picks a cleansing miss-inflation factor that stays physical
// (misses can never exceed accesses): ratio·(1+gain) ≤ 0.9.
func missGainFor(missRatio float64) float64 {
	gain := 0.9/missRatio - 1
	if gain > 5 {
		gain = 5
	}
	return gain
}
