package sds_test

import (
	"fmt"
	"log"

	"github.com/memdos/sds"
)

// The paper's Table 1 derives H_C = 30 from Chebyshev's inequality at
// k = 1.125 and 99.9% confidence (Eq. 4).
func ExampleChebyshevHC() {
	hc, err := sds.ChebyshevHC(1.125, 0.999)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(hc)
	// Output: 30
}

// A complete detection loop against the simulated substrate: profile the
// application, attach the combined detector, and inject a bus-locking
// attack.
func ExampleSimulate() {
	cfg := sds.DefaultConfig()
	profile, err := sds.CollectProfile(sds.KMeans, 1, 900, cfg)
	if err != nil {
		log.Fatal(err)
	}
	detector, err := sds.NewSDS(profile, cfg)
	if err != nil {
		log.Fatal(err)
	}
	app, err := sds.NewApplication(sds.KMeans, 2)
	if err != nil {
		log.Fatal(err)
	}
	const attackAt = 120.0
	alarms, err := sds.Simulate(app, detector, cfg, sds.SimulateOptions{
		Seconds: 240,
		Attack:  sds.AttackSchedule{Kind: sds.BusLockAttack, Start: attackAt, Ramp: 10},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, alarm := range alarms {
		if alarm.T >= attackAt {
			fmt.Printf("attack detected %.0f s after launch\n", alarm.T-attackAt)
			break
		}
	}
	// Output: attack detected 18 s after launch
}
