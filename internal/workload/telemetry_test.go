package workload

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/memdos/sds/internal/randx"
	"github.com/memdos/sds/internal/signal"
	"github.com/memdos/sds/internal/timeseries"
)

const tpcm = 0.01

func mustModel(t *testing.T, name string, seed uint64) *Model {
	t.Helper()
	m, err := NewModel(MustAppProfile(name), randx.Derive(seed, 1))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// collect draws n samples under a fixed environment.
func collect(m *Model, n int, env Env) (access, miss []float64) {
	access = make([]float64, n)
	miss = make([]float64, n)
	for i := 0; i < n; i++ {
		access[i], miss[i] = m.Sample(tpcm, env)
	}
	return access, miss
}

func TestAllAppProfilesValid(t *testing.T) {
	for _, name := range AppNames() {
		p, err := AppProfile(name)
		if err != nil {
			t.Fatalf("AppProfile(%s): %v", name, err)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", name, err)
		}
		if p.MissRatio*(1+p.CleanseMissGain) > 1 {
			t.Errorf("profile %s: cleansing would push misses above accesses", name)
		}
	}
	if _, err := AppProfile("nonexistent"); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestMustAppProfilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAppProfile did not panic on unknown name")
		}
	}()
	MustAppProfile("nope")
}

func TestProfileValidate(t *testing.T) {
	base := MustAppProfile(KMeans)
	tests := []struct {
		name   string
		mutate func(*Profile)
	}{
		{"empty name", func(p *Profile) { p.Name = "" }},
		{"zero base", func(p *Profile) { p.BaseAccess = 0 }},
		{"negative cv", func(p *Profile) { p.AccessCV = -1 }},
		{"bad miss ratio", func(p *Profile) { p.MissRatio = 1.5 }},
		{"phase without duration", func(p *Profile) { p.PhaseDelta = 0.2; p.MeanPhaseDur = 0 }},
		{"periodic without period", func(p *Profile) { p.Periodic = true; p.PeriodSec = 0 }},
		{"bus drop too large", func(p *Profile) { p.BusLockDrop = 1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := base
			tt.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Error("invalid profile accepted")
			}
		})
	}
}

func TestNewModelValidation(t *testing.T) {
	if _, err := NewModel(Profile{}, randx.New(1, 2)); err == nil {
		t.Error("invalid profile accepted")
	}
	if _, err := NewModel(MustAppProfile(Bayes), nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestModelDeterminism(t *testing.T) {
	a := mustModel(t, TeraSort, 7)
	b := mustModel(t, TeraSort, 7)
	for i := 0; i < 1000; i++ {
		aa, am := a.Sample(tpcm, Env{})
		ba, bm := b.Sample(tpcm, Env{})
		if aa != ba || am != bm {
			t.Fatalf("sample %d diverged", i)
		}
	}
}

func TestModelBaselineLevels(t *testing.T) {
	for _, name := range AppNames() {
		m := mustModel(t, name, 11)
		access, miss := collect(m, 30000, Env{}) // 300 s
		p := m.Profile()
		meanA := timeseries.Mean(access)
		if math.Abs(meanA-p.BaseAccess) > 0.12*p.BaseAccess {
			t.Errorf("%s: mean access %v, want within 12%% of %v", name, meanA, p.BaseAccess)
		}
		ratio := timeseries.Mean(miss) / meanA
		if math.Abs(ratio-p.MissRatio) > 0.3*p.MissRatio {
			t.Errorf("%s: miss ratio %v, want ~%v", name, ratio, p.MissRatio)
		}
		for i := range access {
			if access[i] < 0 || miss[i] < 0 || miss[i] > access[i] {
				t.Fatalf("%s: sample %d violates 0 ≤ miss ≤ access: %v %v", name, i, access[i], miss[i])
			}
		}
	}
}

func TestBusLockDropsAccess(t *testing.T) {
	// Observation 1 (bus-lock half): AccessNum collapses under attack.
	// Long windows (300 s each) average over the apps' execution phases.
	for _, name := range AppNames() {
		m := mustModel(t, name, 13)
		normalA, _ := collect(m, 30000, Env{})
		attackA, _ := collect(m, 30000, Env{BusLock: 1})
		drop := 1 - timeseries.Mean(attackA)/timeseries.Mean(normalA)
		want := m.Profile().BusLockDrop
		if math.Abs(drop-want) > 0.12 {
			t.Errorf("%s: access drop %v, want ~%v", name, drop, want)
		}
	}
}

func TestCleansingInflatesMisses(t *testing.T) {
	// Observation 1 (cleansing half): MissNum rises; AccessNum roughly flat.
	for _, name := range AppNames() {
		m := mustModel(t, name, 17)
		normalA, normalM := collect(m, 30000, Env{})
		attackA, attackM := collect(m, 30000, Env{Cleanse: 1})
		gain := timeseries.Mean(attackM) / timeseries.Mean(normalM)
		if gain < 2 {
			t.Errorf("%s: miss inflation %vx, want ≥ 2x", name, gain)
		}
		accessShift := math.Abs(timeseries.Mean(attackA)/timeseries.Mean(normalA) - 1)
		if accessShift > 0.15 {
			t.Errorf("%s: cleansing moved accesses by %v, want ≲ 0.15", name, accessShift)
		}
	}
}

func TestPeriodicModelsHaveDetectablePeriod(t *testing.T) {
	for _, name := range PeriodicApps() {
		m := mustModel(t, name, 19)
		access, _ := collect(m, 12000, Env{}) // 120 s
		ma, err := timeseries.MovingAverage(access, 200, 50)
		if err != nil {
			t.Fatal(err)
		}
		// Expected MA-series period: PeriodSec / (ΔW·T_PCM).
		want := m.Profile().PeriodSec / (50 * tpcm)
		got, ok := maPeriod(ma)
		if !ok {
			t.Fatalf("%s: no period found in MA series", name)
		}
		if math.Abs(got-want)/want > 0.2 {
			t.Errorf("%s: MA period %v, want ~%v", name, got, want)
		}
	}
}

func TestAttackStretchesPeriod(t *testing.T) {
	// Observation 2: the periodic pattern's period grows under attack.
	for _, name := range PeriodicApps() {
		for _, env := range []Env{{BusLock: 1}, {Cleanse: 1}} {
			m := mustModel(t, name, 23)
			normalA, _ := collect(m, 12000, Env{})
			attackA, _ := collect(m, 12000, env)
			maN, _ := timeseries.MovingAverage(normalA, 200, 50)
			maA, _ := timeseries.MovingAverage(attackA, 200, 50)
			pn, okN := maPeriod(maN)
			pa, okA := maPeriod(maA)
			if !okN || !okA {
				t.Fatalf("%s: period detection failed (normal %v attack %v)", name, okN, okA)
			}
			stretch := pa/pn - 1
			want := m.Profile().PeriodStretch
			if stretch < want*0.6 {
				t.Errorf("%s under %+v: stretch %v, want ≥ %v", name, env, stretch, want*0.6)
			}
		}
	}
}

func TestNonPeriodicAppsHaveNoPeriod(t *testing.T) {
	misdetected := 0
	for _, name := range []string{Bayes, KMeans, Scan} {
		m := mustModel(t, name, 29)
		access, _ := collect(m, 12000, Env{})
		ma, _ := timeseries.MovingAverage(access, 200, 50)
		if _, ok := maPeriod(ma); ok {
			misdetected++
		}
	}
	if misdetected > 1 {
		t.Fatalf("found periods in %d/3 non-periodic apps", misdetected)
	}
}

func TestQuiescedEffectSmall(t *testing.T) {
	// A stationary profile isolates the quiescing effect from phase drift.
	prof := MustAppProfile(KMeans)
	prof.PhaseDelta = 0
	prof.MeanPhaseDur = 0
	prof.BurstProb = 0
	m, err := NewModel(prof, randx.Derive(31, 1))
	if err != nil {
		t.Fatal(err)
	}
	normalA, normalM := collect(m, 5000, Env{})
	quietA, quietM := collect(m, 5000, Env{Quiesced: true})
	shift := timeseries.Mean(quietA)/timeseries.Mean(normalA) - 1
	if shift < 0 || shift > 0.05 {
		t.Fatalf("quiesced access shift %v, want small positive", shift)
	}
	ratioShift := timeseries.Mean(quietM)/timeseries.Mean(quietA) -
		timeseries.Mean(normalM)/timeseries.Mean(normalA)
	if ratioShift >= 0 {
		t.Fatalf("quiesced miss-ratio shift %v, want slightly negative", ratioShift)
	}
}

func TestSampleInvariantProperty(t *testing.T) {
	m := mustModel(t, TeraSort, 37)
	f := func(busRaw, cleanseRaw uint8) bool {
		env := Env{
			BusLock: float64(busRaw) / 255,
			Cleanse: float64(cleanseRaw) / 255,
		}
		a, miss := m.Sample(tpcm, env)
		return a >= 0 && miss >= 0 && miss <= a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// maPeriod estimates the dominant period of an MA series with the same
// DFT–ACF machinery SDS/P uses.
func maPeriod(ma []float64) (float64, bool) {
	est, ok := signal.EstimatePeriod(ma, signal.PeriodOptions{})
	return float64(est.Period), ok
}
