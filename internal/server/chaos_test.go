package server

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/memdos/sds/internal/faultinject"
	"github.com/memdos/sds/internal/feed"
)

// chaosClient streams a handshake and body through a fault-injecting
// connection wrapper while collecting the server's responses. Injected
// terminal faults (drop, write failure) are expected outcomes, not test
// errors.
func chaosClient(t *testing.T, addr, hs string, body []byte, f faultinject.Faults) clientResult {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fc := faultinject.Wrap(conn, f)
	return readResponses(t, conn, func() {
		payload := append([]byte(hs+"\n"), body...)
		if _, err := fc.Write(payload); err != nil &&
			!errors.Is(err, faultinject.ErrDrop) && !errors.Is(err, faultinject.ErrWriteFail) {
			t.Errorf("chaos write: %v", err)
			return
		}
		fc.CloseWrite()
	})
}

// oracleCounts replays the client's exact payload (handshake line included)
// through the fault schedule and the feed parser, returning the number of
// records the server must ingest and the lines it must quarantine.
func oracleCounts(t *testing.T, payload []byte, f faultinject.Faults) (ok, bad int) {
	t.Helper()
	damaged := faultinject.Apply(payload, f)
	i := bytes.IndexByte(damaged, '\n') // strip the handshake line
	r := feed.NewReader(bytes.NewReader(damaged[i+1:]))
	for {
		_, err := r.Next()
		if err == io.EOF {
			return ok, bad
		}
		var pe *feed.ParseError
		if errors.As(err, &pe) {
			bad++
			continue
		}
		if err != nil {
			t.Fatalf("oracle replay: %v", err)
		}
		ok++
	}
}

// waitDisconnected polls the ops surface until vm's stream has released its
// slot (or the deadline passes).
func waitDisconnected(t *testing.T, s *Server, vm string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m, ok := s.Metrics().VMs[vm]; ok && !m.Connected {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("vm %s never released its slot", vm)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// attackedStream renders the canonical fixed-seed attacked stream (the same
// shape the golden transcript pins): 160 s of k-means telemetry with a bus
// locking attack from t=100 s, against a 60 s profile window.
func attackedStream(t *testing.T) ([]byte, int) {
	t.Helper()
	var buf bytes.Buffer
	n, err := WriteSimulatedStream(&buf, ReplaySpec{App: "kmeans", Seconds: 160, AttackAt: 100, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), n
}

// TestServerChaosSuite is the fault-injection acceptance test: several VM
// streams with per-VM deterministic fault schedules hit one server at a
// fixed seed, and every count the server reports must match the local
// oracle exactly — no sample lost on a surviving stream, every malformed
// line quarantined without killing its connection, every attacked VM that
// survives long enough still alarming.
func TestServerChaosSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite replays several full attacked streams")
	}
	body, n := attackedStream(t)
	const hsFmt = "sds/1 vm=%s app=kmeans scheme=%s profile=60"

	cases := []struct {
		vm       string
		scheme   string // detection scheme ("" = sds)
		faults   faultinject.Faults
		hasDone  bool // the client survives to read its done line
		mayMiss  bool // scheme is structurally unable to alarm on this stream
		wantDrop int  // records the schedule removes from the stream's tail
	}{
		{vm: "clean", faults: faultinject.Faults{}, hasDone: true},
		{vm: "corrupt", faults: faultinject.Faults{Seed: 101, SkipLines: 2, CorruptEvery: 9}, hasDone: true},
		{vm: "truncate", faults: faultinject.Faults{Seed: 102, SkipLines: 2, TruncateEvery: 51}, hasDone: true},
		{vm: "torn", faults: faultinject.Faults{Seed: 103, SkipLines: 2, PartialWriteMax: 7, StallEvery: 2000, Stall: 200 * time.Microsecond}, hasDone: true},
		// Every 401st line balloons past feed.MaxLineBytes: each must be
		// quarantined (oversized lines used to kill the whole stream) and
		// the samples around it must all survive.
		{vm: "oversize", faults: faultinject.Faults{Seed: 104, SkipLines: 2, OversizeEvery: 401}, hasDone: true},
		// Drops at t=120 s: 20 s into the attack, long past the first alarm.
		// The write side half-closes at the cut, so the done line (with the
		// abruptly shortened sample count) still reaches the client.
		{vm: "eof", faults: faultinject.Faults{SkipLines: 2, DropAfterLines: 12000}, hasDone: true},
		// The detector zoo rides the same damaged telemetry: each scheme
		// must quarantine identically and still alarm on the attacked
		// stream (possibly pre-onset — kmeans phases against a 60 s
		// profile look suspicious to these detectors, which is fine here;
		// the suite asserts ingest integrity, not tuning).
		{vm: "zoo-cusum", scheme: "cusum", faults: faultinject.Faults{Seed: 105, SkipLines: 2, CorruptEvery: 11}, hasDone: true},
		{vm: "zoo-timefrag", scheme: "timefrag", faults: faultinject.Faults{Seed: 106, SkipLines: 2, TruncateEvery: 47}, hasDone: true},
		// EWMAVar's post-profile Welford calibration spans 92–142 s of
		// this stream — across the 100 s onset — so its variance baseline
		// absorbs the attack and it cannot alarm on this shape at all.
		// It still rides the suite for ingest integrity under faults.
		{vm: "zoo-ewmavar", scheme: "ewmavar", faults: faultinject.Faults{Seed: 107, SkipLines: 2, CorruptEvery: 13, PartialWriteMax: 9}, hasDone: true, mayMiss: true},
	}

	s, addr := startServer(t, Options{ProfileSeconds: 60, BufferSamples: 256})
	type outcome struct {
		res     clientResult
		ok, bad int
	}
	results := make([]outcome, len(cases))
	var wg sync.WaitGroup
	for i, tc := range cases {
		wg.Add(1)
		go func(i int, vm, scheme string, f faultinject.Faults) {
			defer wg.Done()
			if scheme == "" {
				scheme = "sds"
			}
			hs := fmt.Sprintf(hsFmt, vm, scheme)
			ok, bad := oracleCounts(t, append([]byte(hs+"\n"), body...), f)
			results[i] = outcome{res: chaosClient(t, addr, hs, body, f), ok: ok, bad: bad}
		}(i, tc.vm, tc.scheme, tc.faults)
	}
	wg.Wait()
	// The eof VM's transport dies mid-stream; wait for its handler to finish
	// draining before reading aggregate metrics.
	waitDisconnected(t, s, "eof")
	m := s.Metrics()

	wantTotal := uint64(0)
	wantQuarantined := uint64(0)
	for i, tc := range cases {
		got := results[i]
		vm, ok := m.VMs[tc.vm]
		if !ok {
			t.Fatalf("vm %s missing from /metricsz", tc.vm)
		}
		wantTotal += uint64(got.ok)
		wantQuarantined += uint64(got.bad)

		// Zero loss on surviving streams: every record the oracle says
		// survived the fault schedule was ingested.
		if ingested := vm.ProfileSamples + int(vm.Monitored); ingested != got.ok {
			t.Errorf("vm %s: ingested %d records, oracle says %d", tc.vm, ingested, got.ok)
		}
		// Malformed lines are quarantined — exactly as many as the oracle
		// predicts — without killing the connection.
		if vm.Quarantined != uint64(got.bad) {
			t.Errorf("vm %s: quarantined %d lines, oracle says %d", tc.vm, vm.Quarantined, got.bad)
		}
		// Every attacked VM that survived past the attack still alarms.
		if !tc.mayMiss && (!vm.Alarmed || vm.Alarms == 0) {
			t.Errorf("vm %s: attacked stream did not alarm (alarms=%d)", tc.vm, vm.Alarms)
		}
		if tc.hasDone {
			if len(got.res.errorLines) > 0 {
				t.Errorf("vm %s: server errors: %v", tc.vm, got.res.errorLines)
			}
			if got.res.done == nil {
				t.Errorf("vm %s: no done line", tc.vm)
			} else {
				if got.res.done.samples != got.ok {
					t.Errorf("vm %s: done reports %d samples, oracle says %d", tc.vm, got.res.done.samples, got.ok)
				}
				if !tc.mayMiss && got.res.done.alarms == 0 {
					t.Errorf("vm %s: done reports no alarms for an attacked stream", tc.vm)
				}
			}
		}
	}
	if cleanOK := results[0].ok; cleanOK != n {
		t.Errorf("clean oracle lost records: %d of %d", cleanOK, n)
	}
	if m.TotalSamples != wantTotal {
		t.Errorf("aggregate samples = %d, oracle says %d", m.TotalSamples, wantTotal)
	}
	if m.TotalQuarantined != wantQuarantined {
		t.Errorf("aggregate quarantined = %d, oracle says %d", m.TotalQuarantined, wantQuarantined)
	}
}

// TestServerAlarmWriteFailureDoesNotPoisonSession is the zero-loss drain
// regression test: a client that dies mid-stream (every write to it fails
// right after the ok line) must not cost the session its remaining buffered
// samples. Before the sink-based alarm path, the first failed alarm write
// poisoned the session and the worker discarded everything behind it.
func TestServerAlarmWriteFailureDoesNotPoisonSession(t *testing.T) {
	body, n := attackedStream(t)
	s := New(Options{})
	cl, sv := net.Pipe()
	defer cl.Close()

	handlerDone := make(chan struct{})
	go func() {
		defer close(handlerDone)
		// The server's writes fail after the first line (the ok line): the
		// peer is gone the moment the stream starts, as a crashed client.
		s.handleConn(faultinject.Wrap(sv, faultinject.Faults{FailWritesAfterLines: 1}))
	}()

	if _, err := cl.Write([]byte("sds/1 vm=dead app=kmeans scheme=sds profile=60\n")); err != nil {
		t.Fatal(err)
	}
	okLine, err := bufio.NewReader(cl).ReadString('\n')
	if err != nil || !strings.HasPrefix(okLine, "ok ") {
		t.Fatalf("no ok line before client death: %q, %v", okLine, err)
	}
	if _, err := cl.Write(body); err != nil {
		t.Fatal(err)
	}
	cl.Close()
	<-handlerDone

	m := s.Metrics()
	if m.TotalSamples != uint64(n) {
		t.Errorf("server processed %d of %d samples — alarm write failure poisoned the drain", m.TotalSamples, n)
	}
	vm := m.VMs["dead"]
	if vm.ProfileSamples+int(vm.Monitored) != n {
		t.Errorf("session ingested %d of %d samples", vm.ProfileSamples+int(vm.Monitored), n)
	}
	if !vm.Alarmed || vm.Alarms == 0 {
		t.Errorf("attacked stream did not alarm (alarms=%d)", vm.Alarms)
	}
	if m.TotalAlarms == 0 {
		t.Error("ops surface reports zero alarms")
	}
}

// TestServerResumesProfilingSession: a connection that drops inside the
// Stage-1 profiling window can reconnect with the same vm id and spec and
// resume its session where it left off; the replayed prefix is deduplicated
// so the session sees every sample exactly once.
func TestServerResumesProfilingSession(t *testing.T) {
	const (
		profile = 20.0
		total   = 2500 // 20 s profile + 5 s monitored at tpcm=0.01
	)
	body := synthCSV(0, total, 0.01, 100)
	hs := "sds/1 vm=r1 profile=20"
	s, addr := startServer(t, Options{ProfileSeconds: profile})

	// First connection dies 10 s into the 20 s profile window.
	chaosClient(t, addr, hs, body, faultinject.Faults{SkipLines: 2, DropAfterLines: 1000})
	waitDisconnected(t, s, "r1")
	if vm := s.Metrics().VMs["r1"]; !vm.Profiling || vm.ProfileSamples != 1000 {
		t.Fatalf("pre-resume state = %+v, want 1000 profile samples still profiling", vm)
	}

	// Second connection replays the stream from the start.
	res := runClient(t, addr, hs, body)
	if !strings.Contains(res.okLine, "resumed=1") || !strings.Contains(res.okLine, "last_t=10") {
		t.Errorf("ok line %q does not announce the resume", res.okLine)
	}
	if len(res.errorLines) > 0 {
		t.Errorf("resumed stream errors: %v", res.errorLines)
	}
	if res.done == nil {
		t.Fatal("no done line on resumed stream")
	}
	if res.done.samples != total {
		t.Errorf("resumed session accounted %d of %d samples", res.done.samples, total)
	}
	if res.done.monitored != total-2000 {
		t.Errorf("monitored = %d, want %d", res.done.monitored, total-2000)
	}
	m := s.Metrics()
	if vm := m.VMs["r1"]; vm.Resumes != 1 {
		t.Errorf("resumes = %d, want 1", vm.Resumes)
	}
	// Exactly-once: the 1000 replayed samples were not double-counted.
	if m.TotalSamples != total {
		t.Errorf("aggregate samples = %d, want %d", m.TotalSamples, total)
	}

	t.Run("mismatched spec starts fresh", func(t *testing.T) {
		hs2 := "sds/1 vm=r2 profile=20"
		chaosClient(t, addr, hs2, body, faultinject.Faults{SkipLines: 2, DropAfterLines: 500})
		waitDisconnected(t, s, "r2")
		// Reconnect with a different profile window: not resumable.
		res := runClient(t, addr, "sds/1 vm=r2 profile=15", body)
		if strings.Contains(res.okLine, "resumed=") {
			t.Errorf("spec mismatch still resumed: %q", res.okLine)
		}
		if res.done == nil || res.done.samples != total {
			t.Errorf("fresh session done = %+v, want %d samples", res.done, total)
		}
	})

	t.Run("resume disabled", func(t *testing.T) {
		s2, addr2 := startServer(t, Options{ProfileSeconds: profile, MaxResumes: -1})
		chaosClient(t, addr2, "sds/1 vm=r3 profile=20", body, faultinject.Faults{SkipLines: 2, DropAfterLines: 500})
		waitDisconnected(t, s2, "r3")
		res := runClient(t, addr2, "sds/1 vm=r3 profile=20", body)
		if strings.Contains(res.okLine, "resumed=") {
			t.Errorf("MaxResumes<0 still resumed: %q", res.okLine)
		}
		if res.done == nil || res.done.samples != total {
			t.Errorf("fresh session done = %+v, want %d samples", res.done, total)
		}
	})
}

// TestServerResumeRacesNewConnection: while the dropped VM's handler is
// still draining, a reconnect for the same id is rejected as a duplicate —
// the resume path never splits one VM across two live connections.
func TestServerResumeRacesNewConnection(t *testing.T) {
	s, addr := startServer(t, Options{ProfileSeconds: 20, BufferSamples: 8})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := fmt.Fprintf(conn, "sds/1 vm=racer profile=20\n"); err != nil {
		t.Fatal(err)
	}
	okLine := bufio.NewScanner(conn)
	if !okLine.Scan() || !strings.HasPrefix(okLine.Text(), "ok ") {
		t.Fatalf("stream not accepted: %q", okLine.Text())
	}
	// The first stream is mid-profile and still connected: the duplicate
	// must be rejected no matter how the resume budget looks.
	res := runClient(t, addr, "sds/1 vm=racer profile=20", nil)
	if len(res.errorLines) == 0 {
		t.Error("duplicate vm accepted while original stream still draining")
	}
	conn.Close()
	waitDisconnected(t, s, "racer")
	// Now the slot is free: the same id reconnects (and resumes).
	res = runClient(t, addr, "sds/1 vm=racer profile=20", synthCSV(0, 2500, 0.01, 100))
	if res.done == nil {
		t.Fatal("reconnect after release failed")
	}
}

// TestServerIdleEviction: a client that goes silent mid-stream is evicted
// after IdleTimeout — its samples so far are drained and accounted, the
// connection gets an error plus a done line, and the slot frees up.
func TestServerIdleEviction(t *testing.T) {
	const idle = 150 * time.Millisecond
	s, addr := startServer(t, Options{ProfileSeconds: 20, IdleTimeout: idle})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	res := readResponses(t, conn, func() {
		fmt.Fprintf(conn, "sds/1 vm=idle profile=20\n")
		if _, err := conn.Write(synthCSV(0, 100, 0.01, 100)); err != nil {
			t.Errorf("body write: %v", err)
		}
		// Go silent without closing: the server must evict, not wait.
	})
	if len(res.errorLines) == 0 || !strings.Contains(res.errorLines[0], "idle timeout") {
		t.Fatalf("no idle-timeout error line: %v", res.errorLines)
	}
	if res.done == nil || res.done.samples != 100 {
		t.Fatalf("evicted stream done = %+v, want 100 samples drained", res.done)
	}
	m := s.Metrics()
	if m.IdleEvictions != 1 {
		t.Errorf("idle evictions = %d, want 1", m.IdleEvictions)
	}
	if m.ActiveVMs != 0 {
		t.Errorf("%d VMs still active after eviction", m.ActiveVMs)
	}
}

// TestMetricsConcurrentScrape hammers the ops surface while streams are
// being ingested and torn down; under -race it audits every counter the
// /metricsz report touches.
func TestMetricsConcurrentScrape(t *testing.T) {
	s, addr := startServer(t, Options{ProfileSeconds: 5, BufferSamples: 32, Shards: 4})
	stop := make(chan struct{})
	var scrapers sync.WaitGroup
	for i := 0; i < 4; i++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rr := httptest.NewRecorder()
				s.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/metricsz", nil))
				if rr.Code != 200 {
					t.Errorf("metricsz = %d", rr.Code)
					return
				}
			}
		}()
	}
	var clients sync.WaitGroup
	for i := 0; i < 4; i++ {
		clients.Add(1)
		go func(i int) {
			defer clients.Done()
			hs := fmt.Sprintf("sds/1 vm=scrape-%d profile=5", i)
			// One damaged stream in the mix exercises the quarantine
			// counters under concurrent scraping too.
			f := faultinject.Faults{}
			if i == 0 {
				f = faultinject.Faults{Seed: 1, SkipLines: 2, CorruptEvery: 17}
			}
			chaosClient(t, addr, hs, synthCSV(0, 1000, 0.01, 100), f)
		}(i)
	}
	clients.Wait()
	close(stop)
	scrapers.Wait()
	m := s.Metrics()
	if len(m.VMs) != 4 {
		t.Errorf("metrics report %d VMs, want 4", len(m.VMs))
	}
	// The scrape loop above read the per-shard gauges while every counter
	// was moving; now settled, they must reconcile with the totals.
	if len(m.Shards) != 4 {
		t.Fatalf("metrics carry %d shard blocks, want 4", len(m.Shards))
	}
	var shardSamples, shardQuarantined uint64
	for _, sh := range m.Shards {
		shardSamples += sh.Samples
		shardQuarantined += sh.Quarantined
	}
	if shardSamples != m.TotalSamples {
		t.Errorf("shard samples sum to %d, server total %d", shardSamples, m.TotalSamples)
	}
	if shardQuarantined != m.TotalQuarantined {
		t.Errorf("shard quarantines sum to %d, server total %d", shardQuarantined, m.TotalQuarantined)
	}
}

// TestServerIdleSweepChaos pins the IdleTimeout contract across the
// sharded ingest plane's decode paths: the coarse per-shard sweep must
// evict exactly the connections whose stream went silent — CSV pumps and
// event-loop binary streams alike — while leaving slow-but-alive streams
// untouched, with the same error line and drained accounting the per-read
// deadline implementation produced.
func TestServerIdleSweepChaos(t *testing.T) {
	const (
		idle    = 300 * time.Millisecond
		sent    = 100  // samples each silent stream sends before stalling
		slowTot = 1400 // samples a slow stream trickles in
		tpcm    = 0.01
	)
	s, addr := startServer(t, Options{ProfileSeconds: 20, IdleTimeout: idle, Shards: 2})

	var wg sync.WaitGroup
	silent := func(i int, hs string, body []byte) {
		defer wg.Done()
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Errorf("silent %d: %v", i, err)
			return
		}
		defer conn.Close()
		res := readResponses(t, conn, func() {
			fmt.Fprintf(conn, "%s\n", hs)
			if _, err := conn.Write(body); err != nil {
				t.Errorf("silent %d: body write: %v", i, err)
			}
			// Stall without closing: only the sweep can end this stream.
		})
		if len(res.errorLines) != 1 || !strings.Contains(res.errorLines[0], "idle timeout") {
			t.Errorf("silent %d: error lines = %v, want one idle timeout", i, res.errorLines)
		}
		if res.done == nil || res.done.samples != sent {
			t.Errorf("silent %d: done = %+v, want %d samples drained", i, res.done, sent)
		}
	}
	slow := func(i int) {
		defer wg.Done()
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Errorf("slow %d: %v", i, err)
			return
		}
		defer conn.Close()
		res := readResponses(t, conn, func() {
			// 12 s profile = 1200 samples at this tpcm — past the profiler's
			// 1150-sample minimum, so the trickled stream ends cleanly
			// monitored.
			fmt.Fprintf(conn, "sds/1 vm=slow-%d profile=12\nt,access,miss\n", i)
			// Trickle batches with gaps far below IdleTimeout: a sweep that
			// measures anything but one blocked read would evict these.
			for off := 0; off < slowTot; off += 70 {
				b := synthCSV(off, off+70, tpcm, 100)
				b = bytes.TrimPrefix(b, []byte("t,access,miss\n"))
				if _, err := conn.Write(b); err != nil {
					t.Errorf("slow %d: write: %v", i, err)
					return
				}
				time.Sleep(idle / 10)
			}
			conn.(*net.TCPConn).CloseWrite()
		})
		if len(res.errorLines) > 0 {
			t.Errorf("slow %d: evicted a live stream: %v", i, res.errorLines)
		}
		if res.done == nil || res.done.samples != slowTot {
			t.Errorf("slow %d: done = %+v, want %d samples", i, res.done, slowTot)
		}
	}

	// 4 silent CSV streams (goroutine pump sweep), 2 silent binary streams
	// (event-loop sweep where the platform has one), 3 slow CSV streams.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go silent(i, fmt.Sprintf("sds/1 vm=idle-csv-%d profile=20", i), synthCSV(0, sent, tpcm, 100))
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go silent(4+i, fmt.Sprintf("sds/1 vm=idle-bin-%d profile=20 frames=bin", i), synthBinOpen(t, 0, sent, tpcm, 100))
	}
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go slow(i)
	}
	wg.Wait()

	m := s.Metrics()
	if m.IdleEvictions != 6 {
		t.Errorf("idle evictions = %d, want 6 (the silent streams, nothing else)", m.IdleEvictions)
	}
	if m.ActiveVMs != 0 {
		t.Errorf("%d VMs still active after sweep and close", m.ActiveVMs)
	}
}
