// Package membus models the shared memory-bus resource of a processor
// socket. Modern processors temporarily lock all internal memory buses to
// guarantee atomicity of certain operations (paper §2.2); the atomic
// bus-locking attack issues such operations continuously, starving
// co-located VMs of bus bandwidth. The model is a per-tick slot allocator:
// lock windows consume an exclusive fraction of the tick, and the remaining
// slots are shared max-min fairly among the requestors.
package membus

import (
	"fmt"
	"math"
	"sort"
)

// Demand is one requestor's bus demand for a tick.
type Demand struct {
	// Owner identifies the requestor (VM index).
	Owner int
	// Accesses is the number of memory accesses the requestor wants to
	// issue this tick.
	Accesses int
	// LockFraction is the fraction of the tick the requestor spends
	// holding atomic bus locks (only the bus-lock attacker sets this).
	// During lock windows no other requestor's accesses proceed, but the
	// holder's own accesses do.
	LockFraction float64
}

// Grant is the allocator's answer to a Demand.
type Grant struct {
	Owner    int
	Accesses int // granted accesses, ≤ demand
	Stalled  int // demand − granted
}

// Stats accumulates allocator totals across ticks.
type Stats struct {
	Requested      uint64
	Granted        uint64
	Stalled        uint64
	LockedTickFrac float64 // sum over ticks of the locked fraction
	Ticks          uint64
}

// Bus is the allocator. The zero value is unusable; construct with New.
type Bus struct {
	perSecond float64
	maxLock   float64
	stats     Stats
}

// New returns a bus that can serve accessesPerSecond accesses when unlocked.
// maxLockFraction caps the tick fraction lock windows may consume (the
// hardware always lets some cycles through); values ≤ 0 default to 0.95.
func New(accessesPerSecond float64, maxLockFraction float64) (*Bus, error) {
	if accessesPerSecond <= 0 {
		return nil, fmt.Errorf("membus: accessesPerSecond must be positive, got %v", accessesPerSecond)
	}
	if maxLockFraction <= 0 || maxLockFraction > 1 {
		maxLockFraction = 0.95
	}
	return &Bus{perSecond: accessesPerSecond, maxLock: maxLockFraction}, nil
}

// Capacity returns the unlocked accesses-per-second capacity.
func (b *Bus) Capacity() float64 { return b.perSecond }

// Stats returns a copy of the cumulative allocator statistics.
func (b *Bus) Stats() Stats { return b.stats }

// Allocate serves one tick of dt seconds. Lock windows from all demands are
// summed (capped at the configured maximum): the lock holders' own accesses
// are served from the full budget, everyone else shares the unlocked
// remainder max-min fairly. The returned grants are ordered like demands.
func (b *Bus) Allocate(dt float64, demands []Demand) ([]Grant, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("membus: tick duration must be positive, got %v", dt)
	}
	budget := int(b.perSecond * dt)
	lock := 0.0
	for _, d := range demands {
		if d.Accesses < 0 {
			return nil, fmt.Errorf("membus: negative demand %d from owner %d", d.Accesses, d.Owner)
		}
		if d.LockFraction < 0 || d.LockFraction > 1 {
			return nil, fmt.Errorf("membus: lock fraction %v from owner %d out of [0,1]", d.LockFraction, d.Owner)
		}
		lock += d.LockFraction
	}
	if lock > b.maxLock {
		lock = b.maxLock
	}

	grants := make([]Grant, len(demands))
	for i, d := range demands {
		grants[i] = Grant{Owner: d.Owner}
		b.stats.Requested += uint64(d.Accesses)
	}

	// Lock holders are served first from the whole budget (their atomic
	// operations proceed during their own lock windows).
	remaining := budget
	var shared []int // indexes of non-locking demands
	for i, d := range demands {
		if d.LockFraction > 0 {
			got := min(d.Accesses, remaining)
			grants[i].Accesses = got
			remaining -= got
			continue
		}
		shared = append(shared, i)
	}

	// Non-holders can only use the unlocked fraction of the tick.
	open := int(math.Round(float64(budget) * (1 - lock)))
	if open > remaining {
		open = remaining
	}
	allocateFair(demands, grants, shared, open)

	for i, d := range demands {
		grants[i].Stalled = d.Accesses - grants[i].Accesses
		b.stats.Granted += uint64(grants[i].Accesses)
		b.stats.Stalled += uint64(grants[i].Stalled)
	}
	b.stats.LockedTickFrac += lock
	b.stats.Ticks++
	return grants, nil
}

// allocateFair distributes slots among demands[idx] max-min fairly: sort by
// demand, give each the minimum of its demand and an equal share of what is
// left.
func allocateFair(demands []Demand, grants []Grant, idx []int, slots int) {
	if len(idx) == 0 || slots <= 0 {
		return
	}
	order := make([]int, len(idx))
	copy(order, idx)
	sort.Slice(order, func(a, b int) bool {
		return demands[order[a]].Accesses < demands[order[b]].Accesses
	})
	left := slots
	for pos, i := range order {
		share := left / (len(order) - pos)
		got := min(demands[i].Accesses, share)
		grants[i].Accesses = got
		left -= got
	}
	// A second pass hands out any remainder to still-unsatisfied demands.
	for _, i := range order {
		if left == 0 {
			break
		}
		extra := min(demands[i].Accesses-grants[i].Accesses, left)
		grants[i].Accesses += extra
		left -= extra
	}
}
