package signal

import (
	"fmt"
	"math"
)

// Pearson returns the Pearson correlation coefficient of a and b. It errors
// on mismatched or empty input, and returns 0 when either series has zero
// variance.
func Pearson(a, b []float64) (float64, error) {
	if err := checkLengths("Pearson", a, b); err != nil {
		return 0, err
	}
	n := float64(len(a))
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0, nil
	}
	return cov / math.Sqrt(va*vb), nil
}

// CrossCorrelation returns the normalized cross-correlation of a and b for
// lags -maxLag..maxLag; index maxLag+lag holds the value for a given lag
// (positive lag means b delayed relative to a).
func CrossCorrelation(a, b []float64, maxLag int) ([]float64, error) {
	if err := checkLengths("CrossCorrelation", a, b); err != nil {
		return nil, err
	}
	n := len(a)
	if maxLag >= n {
		maxLag = n - 1
	}
	if maxLag < 0 {
		maxLag = 0
	}
	ma, mb := mean(a), mean(b)
	var va, vb float64
	for i := range a {
		va += (a[i] - ma) * (a[i] - ma)
		vb += (b[i] - mb) * (b[i] - mb)
	}
	norm := math.Sqrt(va * vb)
	out := make([]float64, 2*maxLag+1)
	if norm == 0 {
		return out, nil
	}
	for lag := -maxLag; lag <= maxLag; lag++ {
		var c float64
		for i := 0; i < n; i++ {
			j := i + lag
			if j < 0 || j >= n {
				continue
			}
			c += (a[i] - ma) * (b[j] - mb)
		}
		out[maxLag+lag] = c / norm
	}
	return out, nil
}

// SpectralCoherence estimates the magnitude-squared coherence between a and
// b averaged over Welch segments of the given size with 50% overlap, and
// returns the mean coherence across frequencies — the scalar the paper's
// exploratory study (§3.4) compared across time. segment must be at least 4;
// series shorter than one segment return an error.
func SpectralCoherence(a, b []float64, segment int) (float64, error) {
	if err := checkLengths("SpectralCoherence", a, b); err != nil {
		return 0, err
	}
	if segment < 4 {
		segment = 4
	}
	if len(a) < segment {
		return 0, fmt.Errorf("signal: SpectralCoherence needs at least one segment of %d samples, got %d", segment, len(a))
	}
	step := segment / 2
	nb := segment/2 + 1
	sxx := make([]float64, nb)
	syy := make([]float64, nb)
	sxyRe := make([]float64, nb)
	sxyIm := make([]float64, nb)
	segments := 0
	for start := 0; start+segment <= len(a); start += step {
		fa := windowedFFT(a[start : start+segment])
		fb := windowedFFT(b[start : start+segment])
		for k := 0; k < nb; k++ {
			ra, ia := real(fa[k]), imag(fa[k])
			rb, ib := real(fb[k]), imag(fb[k])
			sxx[k] += ra*ra + ia*ia
			syy[k] += rb*rb + ib*ib
			// X * conj(Y)
			sxyRe[k] += ra*rb + ia*ib
			sxyIm[k] += ia*rb - ra*ib
		}
		segments++
	}
	if segments == 0 {
		return 0, nil
	}
	var sum float64
	counted := 0
	for k := 1; k < nb; k++ { // skip DC
		den := sxx[k] * syy[k]
		if den == 0 {
			continue
		}
		sum += (sxyRe[k]*sxyRe[k] + sxyIm[k]*sxyIm[k]) / den
		counted++
	}
	if counted == 0 {
		return 0, nil
	}
	return sum / float64(counted), nil
}

// windowedFFT applies a Hann window to a demeaned copy of x and transforms.
func windowedFFT(x []float64) []complex128 {
	n := len(x)
	m := mean(x)
	cx := make([]complex128, n)
	for i, v := range x {
		w := 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(n-1)))
		cx[i] = complex((v-m)*w, 0)
	}
	return FFT(cx)
}

func mean(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}
