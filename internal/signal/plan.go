package signal

import (
	"math"
	"math/bits"
	"math/cmplx"
	"sync"
)

// This file implements the plan/scratch layer of the FFT: all tables that
// depend only on the transform size — bit-reversal permutations, per-stage
// twiddle factors, and Bluestein chirp/convolution tables — are computed
// once per size, cached process-wide, and shared by every transform of that
// size. A FFTPlan adds per-instance scratch on top of the shared tables so
// that repeated transforms of the same size allocate nothing.
//
// Numerical contract: every code path reproduces the original free-function
// implementation operation for operation (the twiddle tables are built with
// the same iterated-multiplication recurrence the in-line loop used, and
// the Bluestein convolution multiplies in the same order), so plan-based
// transforms are bit-identical to the historical FFT/IFFT results. The
// detection pipeline's fixed-seed outputs therefore do not change; see
// plan_test.go for the enforced equivalence.

// fftTables holds the immutable, shareable precomputation for one transform
// size. Safe for concurrent use once built.
type fftTables struct {
	n    int
	pow2 bool

	// Power-of-two path: bit-reversal permutation and per-stage twiddle
	// factors. twiddle[d][k] for d = stage index (size 2<<d) holds the
	// value the original loop's running w had after k multiplications by
	// wStep, flattened into one slice with stage s (size = 2^(s+1))
	// starting at offset 2^s − 1. fwd is the forward (sign −1) table, inv
	// the inverse (sign +1) table.
	rev      []int32
	fwd, inv []complex128

	// Bluestein path (non-power-of-two sizes): the chirp sequences
	// exp(±iπk²/n), the forward FFT of the padded conjugate-chirp
	// sequence for both directions, and the tables of the power-of-two
	// convolution size m.
	m              int
	chirpF, chirpI []complex128
	bFFTF, bFFTI   []complex128
	sub            *fftTables
}

// tableCache caches fftTables per size for the lifetime of the process. The
// set of sizes any workload touches is small (the detector window sizes and
// their padded power-of-two companions), so the cache is unbounded.
var tableCache sync.Map // int -> *fftTables

// tablesFor returns the shared tables for size n, building them on first
// use. Concurrent first calls may build duplicates; all are identical and
// one wins the cache slot.
func tablesFor(n int) *fftTables {
	if v, ok := tableCache.Load(n); ok {
		return v.(*fftTables)
	}
	t := newFFTTables(n)
	actual, _ := tableCache.LoadOrStore(n, t)
	return actual.(*fftTables)
}

func newFFTTables(n int) *fftTables {
	t := &fftTables{n: n}
	if n == 0 {
		return t
	}
	if n&(n-1) == 0 {
		t.pow2 = true
		t.buildPow2()
		return t
	}
	t.buildBluestein()
	return t
}

// buildPow2 precomputes the bit-reversal permutation and the per-stage
// twiddle tables, reproducing the original running-product recurrence
// (w = 1; w *= wStep) exactly so table-driven butterflies are bit-identical
// to the historical in-line computation.
func (t *fftTables) buildPow2() {
	n := t.n
	t.rev = make([]int32, n)
	if n > 1 {
		shift := 64 - uint(bits.TrailingZeros(uint(n)))
		for i := 0; i < n; i++ {
			t.rev[i] = int32(bits.Reverse64(uint64(i)) >> shift)
		}
	}
	t.fwd = buildTwiddles(n, -1)
	t.inv = buildTwiddles(n, +1)
}

// buildTwiddles returns the flattened per-stage twiddle table for the given
// sign, stage s (butterfly size 2^(s+1)) at offset 2^s − 1 with 2^s entries.
func buildTwiddles(n int, sign float64) []complex128 {
	if n < 2 {
		return nil
	}
	tw := make([]complex128, n-1)
	off := 0
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := sign * 2 * math.Pi / float64(size)
		wStep := cmplx.Exp(complex(0, step))
		w := complex(1, 0)
		for k := 0; k < half; k++ {
			tw[off+k] = w
			w *= wStep
		}
		off += half
	}
	return tw
}

// buildBluestein precomputes the chirp sequences and the forward FFTs of
// the padded conjugate-chirp ("b") sequences for both transform directions.
func (t *fftTables) buildBluestein() {
	n := t.n
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	t.m = m
	t.sub = tablesFor(m)
	t.chirpF = buildChirp(n, -1)
	t.chirpI = buildChirp(n, +1)
	t.bFFTF = buildChirpFFT(t.chirpF, m, t.sub)
	t.bFFTI = buildChirpFFT(t.chirpI, m, t.sub)
}

// buildChirp returns chirp[k] = exp(sign·iπk²/n), with k² reduced mod 2n to
// keep the angle argument small — the same reduction the original used.
func buildChirp(n int, sign float64) []complex128 {
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		k2 := (int64(k) * int64(k)) % int64(2*n)
		chirp[k] = cmplx.Exp(complex(0, sign*math.Pi*float64(k2)/float64(n)))
	}
	return chirp
}

// buildChirpFFT builds the padded conjugate-chirp sequence and transforms
// it with the size-m tables.
func buildChirpFFT(chirp []complex128, m int, sub *fftTables) []complex128 {
	n := len(chirp)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		b[k] = cmplx.Conj(chirp[k])
	}
	for k := 1; k < n; k++ {
		b[m-k] = cmplx.Conj(chirp[k])
	}
	sub.radix2(b, false)
	return b
}

// radix2 performs the table-driven in-place iterative Cooley–Tukey FFT.
// len(x) must equal t.n, which must be a power of two.
func (t *fftTables) radix2(x []complex128, inverse bool) {
	n := t.n
	if n < 2 {
		return
	}
	for i, r := range t.rev {
		j := int(r)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	tw := t.fwd
	if inverse {
		tw = t.inv
	}
	off := 0
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		stage := tw[off : off+half]
		for start := 0; start < n; start += size {
			// Per-block slices replace the start+k+half index arithmetic
			// and let the compiler drop the butterfly bounds checks; the
			// arithmetic itself is untouched, so results stay bit-identical.
			lo := x[start : start+half]
			hi := x[start+half : start+size][:len(stage)]
			for k, w := range stage {
				a := lo[k]
				b := hi[k] * w
				lo[k] = a + b
				hi[k] = a - b
			}
		}
		off += half
	}
}

// bluestein computes the arbitrary-length DFT of src into dst using the
// precomputed chirp/convolution tables and the caller-provided scratch of
// length t.m. dst and src may alias; scratch must not alias either.
func (t *fftTables) bluestein(dst, src, scratch []complex128, inverse bool) {
	n := t.n
	chirp, bFFT := t.chirpF, t.bFFTF
	if inverse {
		chirp, bFFT = t.chirpI, t.bFFTI
	}
	// Length-linked reslices below keep the element loops bounds-check
	// free; every arithmetic expression is unchanged and bit-identical.
	a := scratch[:t.m]
	head := a[:len(chirp)]
	srcN := src[:len(chirp)]
	for k, ck := range chirp {
		head[k] = srcN[k] * ck
	}
	pad := a[n:]
	for k := range pad {
		pad[k] = 0
	}
	t.sub.radix2(a, false)
	bf := bFFT[:len(a)]
	for i, bv := range bf {
		a[i] *= bv
	}
	t.sub.radix2(a, true)
	scale := complex(1/float64(t.m), 0)
	dstN := dst[:len(chirp)]
	for k, ck := range chirp {
		dstN[k] = head[k] * scale * ck
	}
}

// transform computes the DFT (or unnormalized inverse DFT) of src into dst
// using the caller's scratch (nil is fine for power-of-two sizes).
func (t *fftTables) transform(dst, src, scratch []complex128, inverse bool) {
	if t.pow2 {
		if &dst[0] != &src[0] {
			copy(dst, src)
		}
		t.radix2(dst, inverse)
		return
	}
	t.bluestein(dst, src, scratch, inverse)
}

// FFTPlan is a reusable transform of one fixed size: shared immutable
// tables plus instance-owned scratch. Creating a plan is cheap once any
// plan of that size has existed (the tables are cached process-wide);
// transforming through a plan performs no allocation. A plan is NOT safe
// for concurrent use — give each goroutine its own.
type FFTPlan struct {
	t       *fftTables
	scratch []complex128 // len m for Bluestein sizes, nil for powers of two
}

// NewFFTPlan returns a plan for transforms of length n.
func NewFFTPlan(n int) *FFTPlan {
	t := tablesFor(n)
	p := &FFTPlan{t: t}
	if !t.pow2 && n > 0 {
		p.scratch = make([]complex128, t.m)
	}
	return p
}

// Size returns the transform length the plan was built for.
func (p *FFTPlan) Size() int { return p.t.n }

// Forward computes the DFT of src into dst. Both must have length Size();
// dst and src may be the same slice. Bit-identical to FFT(src).
func (p *FFTPlan) Forward(dst, src []complex128) {
	if p.t.n == 0 {
		return
	}
	p.t.transform(dst, src, p.scratch, false)
}

// Inverse computes the inverse DFT of src into dst, normalized by 1/N so
// that Inverse∘Forward is the identity. Bit-identical to IFFT(src).
func (p *FFTPlan) Inverse(dst, src []complex128) {
	n := p.t.n
	if n == 0 {
		return
	}
	p.t.transform(dst, src, p.scratch, true)
	nn := complex(float64(n), 0)
	for i := range dst {
		dst[i] /= nn
	}
}
