package experiment

import (
	"fmt"

	"github.com/memdos/sds/internal/attack"
	"github.com/memdos/sds/internal/metrics"
	"github.com/memdos/sds/internal/workload"
)

// AccuracyCell is one bar of the paper's Figs. 9–11: the distribution of
// recall, specificity and detection delay across runs for one
// (application, attack, scheme) combination.
type AccuracyCell struct {
	App    string
	Attack attack.Kind
	Scheme Scheme

	Recall      metrics.Distribution
	Specificity metrics.Distribution
	// Delay summarizes detection delays of the runs whose alarm had a
	// rising edge during the attack; DetectionRate is the fraction of runs
	// that detected the attack at all (including latched alarms, which
	// contribute no delay).
	Delay         metrics.Distribution
	DetectionRate float64
}

// Accuracy reproduces Figs. 9 (recall), 10 (specificity) and 11 (delay):
// c.Runs seeded runs for every application in apps, both attacks, and every
// scheme the paper evaluates for that application. The grid is executed on
// the parallel engine at run granularity; see Config.Parallel.
func (c Config) Accuracy(apps []string) ([]AccuracyCell, error) {
	if len(apps) == 0 {
		apps = workload.AppNames()
	}
	// Every (attack, scheme) cell of one (app, run) pair profiles from the
	// same derived seed; share those Stage-1 passes across the grid.
	c.profiles = newProfileCache()
	type cellKey struct {
		app    string
		kind   attack.Kind
		scheme Scheme
	}
	var keys []cellKey
	for _, app := range apps {
		for _, kind := range []attack.Kind{attack.BusLock, attack.Cleanse} {
			for _, scheme := range SchemesFor(app) {
				keys = append(keys, cellKey{app, kind, scheme})
			}
		}
	}

	type job struct {
		cell cellKey
		run  int
	}
	jobs := make([]job, 0, len(keys)*c.Runs)
	for _, k := range keys {
		for run := 0; run < c.Runs; run++ {
			jobs = append(jobs, job{k, run})
		}
	}
	outs, err := parallelMap(c.workers(), len(jobs), func(i int) (metrics.Outcome, error) {
		j := jobs[i]
		out, err := c.DetectionRun(j.cell.app, j.cell.kind, j.cell.scheme, j.run)
		if err != nil {
			return metrics.Outcome{}, fmt.Errorf("%s/%v/%s run %d: %w", j.cell.app, j.cell.kind, j.cell.scheme, j.run, err)
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}

	cells := make([]AccuracyCell, 0, len(keys))
	for i, k := range keys {
		var pool runPool
		for _, out := range outs[i*c.Runs : (i+1)*c.Runs] {
			pool.add(out)
		}
		cells = append(cells, AccuracyCell{
			App:           k.app,
			Attack:        k.kind,
			Scheme:        k.scheme,
			Recall:        pool.recall(),
			Specificity:   pool.specificity(),
			Delay:         pool.delay(),
			DetectionRate: pool.detectionRate(),
		})
	}
	return cells, nil
}
