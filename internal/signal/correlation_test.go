package signal

import (
	"math"
	"testing"

	"github.com/memdos/sds/internal/randx"
)

func TestPearsonKnownValues(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		name string
		b    []float64
		want float64
	}{
		{"identity", []float64{1, 2, 3, 4, 5}, 1},
		{"negated", []float64{5, 4, 3, 2, 1}, -1},
		{"scaled and shifted", []float64{12, 14, 16, 18, 20}, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Pearson(a, tt.b)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-tt.want) > 1e-12 {
				t.Fatalf("Pearson = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestPearsonZeroVariance(t *testing.T) {
	got, err := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("Pearson with constant input = %v, want 0", got)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Pearson(nil, nil); err == nil {
		t.Error("empty input accepted")
	}
}

func TestPearsonUncorrelatedNoise(t *testing.T) {
	r := randx.New(1, 2)
	n := 5000
	a := make([]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = r.Normal(0, 1)
		b[i] = r.Normal(0, 1)
	}
	got, err := Pearson(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got) > 0.05 {
		t.Fatalf("independent noise correlation = %v", got)
	}
}

func TestCrossCorrelationFindsLag(t *testing.T) {
	r := randx.New(3, 4)
	const n, shift = 300, 7
	base := make([]float64, n+shift)
	for i := range base {
		base[i] = r.Normal(0, 1)
	}
	a := base[:n]
	b := base[shift : n+shift] // b[i] = a[i+shift] → peak at positive lag.
	xc, err := CrossCorrelation(a, b, 20)
	if err != nil {
		t.Fatal(err)
	}
	best := 0
	for i := range xc {
		if xc[i] > xc[best] {
			best = i
		}
	}
	if gotLag := best - 20; gotLag != -shift {
		t.Fatalf("peak at lag %d, want %d", gotLag, -shift)
	}
}

func TestCrossCorrelationBounds(t *testing.T) {
	r := randx.New(5, 6)
	a := make([]float64, 100)
	b := make([]float64, 100)
	for i := range a {
		a[i] = r.Normal(5, 2)
		b[i] = r.Normal(-1, 3)
	}
	xc, err := CrossCorrelation(a, b, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(xc) != 61 {
		t.Fatalf("len = %d, want 61", len(xc))
	}
	for i, v := range xc {
		if v < -1-1e-9 || v > 1+1e-9 {
			t.Fatalf("xc[%d] = %v out of [-1,1]", i, v)
		}
	}
}

func TestCrossCorrelationConstant(t *testing.T) {
	a := []float64{2, 2, 2, 2}
	xc, err := CrossCorrelation(a, a, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range xc {
		if v != 0 {
			t.Fatalf("constant series xc = %v, want zeros", xc)
		}
	}
}

func TestSpectralCoherenceIdenticalSignals(t *testing.T) {
	x := make([]float64, 256)
	for i := range x {
		x[i] = math.Sin(2*math.Pi*float64(i)/16) + 0.5*math.Sin(2*math.Pi*float64(i)/5)
	}
	got, err := SpectralCoherence(x, x, 64)
	if err != nil {
		t.Fatal(err)
	}
	if got < 0.99 {
		t.Fatalf("self coherence = %v, want ~1", got)
	}
}

func TestSpectralCoherenceIndependentNoise(t *testing.T) {
	r := randx.New(7, 8)
	n := 2048
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = r.Normal(0, 1)
		b[i] = r.Normal(0, 1)
	}
	got, err := SpectralCoherence(a, b, 64)
	if err != nil {
		t.Fatal(err)
	}
	if got > 0.35 {
		t.Fatalf("independent-noise coherence = %v, want small", got)
	}
}

func TestSpectralCoherenceErrors(t *testing.T) {
	if _, err := SpectralCoherence([]float64{1, 2}, []float64{1}, 64); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := SpectralCoherence([]float64{1, 2, 3}, []float64{1, 2, 3}, 64); err == nil {
		t.Error("series shorter than segment accepted")
	}
}
