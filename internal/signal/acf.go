package signal

import "math"

// ACF returns the normalized autocorrelation function of x for lags
// 0..maxLag (inclusive), so ACF(x, L)[0] == 1. maxLag is clamped to
// len(x)-1. A constant (zero-variance) series yields 1 at lag zero and 0
// elsewhere.
func ACF(x []float64, maxLag int) []float64 {
	n := len(x)
	if n == 0 {
		return nil
	}
	if maxLag >= n {
		maxLag = n - 1
	}
	if maxLag < 0 {
		maxLag = 0
	}
	// Result and demeaned scratch share one allocation; the full-slice
	// expression keeps the returned slice from aliasing the scratch.
	buf := make([]float64, maxLag+1+n)
	out := buf[: maxLag+1 : maxLag+1]
	acfDirectInto(out, buf[maxLag+1:], x, maxLag)
	return out
}

// acfDirectInto fills out (length maxLag+1) with the normalized
// autocorrelation of x by the direct O(n·maxLag) summation, using d (length
// ≥ len(x)) as scratch for the demeaned series. out[0] is 1; a constant
// (zero-variance) series yields 0 at every other lag.
//
// Demeaning once up front instead of inside the lag loop halves the
// inner-loop arithmetic; the stored differences and the accumulation order
// are exactly those of the historical two-subtraction form, so the results
// stay bit-identical.
func acfDirectInto(out, d, x []float64, maxLag int) {
	n := len(x)
	mean := 0.0
	for _, v := range x {
		mean += v
	}
	mean /= float64(n)
	d = d[:n]
	var c0 float64
	for i, v := range x {
		dv := v - mean
		d[i] = dv
		c0 += dv * dv
	}
	out[0] = 1
	if c0 == 0 {
		for lag := 1; lag <= maxLag; lag++ {
			out[lag] = 0
		}
		return
	}
	for lag := 1; lag <= maxLag; lag++ {
		var c float64
		tail := d[lag:]
		head := d[:len(tail)] // same length, so both indexings are check-free
		for i, v := range tail {
			c += head[i] * v
		}
		out[lag] = c / c0
	}
}

// onACFHill reports whether the given lag sits on a "hill" of the ACF: a
// neighbourhood that rises to a local maximum. This is the validity test of
// the DFT–ACF estimator — DFT candidates that fall in an ACF valley are
// spurious spectral leakage, while true periods land on hills.
func onACFHill(acf []float64, lag int) (peak int, ok bool) {
	if lag <= 0 || lag >= len(acf) {
		return 0, false
	}
	// Climb from the candidate to the nearest local maximum.
	i := lag
	for i+1 < len(acf) && acf[i+1] > acf[i] {
		i++
	}
	for i-1 > 0 && acf[i-1] > acf[i] {
		i--
	}
	// Reject if the climb wandered too far: the candidate must be within
	// half of its own magnitude of the located peak.
	if abs(i-lag)*2 > lag {
		return 0, false
	}
	// The located maximum must be a real hill: clearly above the sampling
	// noise of the ACF itself (whose standard error is ≈ 1/√n for white
	// noise), with an absolute floor for long series.
	minCorrelation := 3 / math.Sqrt(float64(len(acf)*2))
	if minCorrelation < 0.1 {
		minCorrelation = 0.1
	}
	// Short windows (SDS/P's W_P = 2p) estimate the ACF from few pairs, so
	// even a strong period rarely exceeds ~0.4 there; cap the demand.
	if minCorrelation > 0.25 {
		minCorrelation = 0.25
	}
	if acf[i] < minCorrelation {
		return 0, false
	}
	return i, true
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
