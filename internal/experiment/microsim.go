package experiment

import (
	"fmt"

	"github.com/memdos/sds/internal/attack"
	"github.com/memdos/sds/internal/cachesim"
	"github.com/memdos/sds/internal/detect"
	"github.com/memdos/sds/internal/membus"
	"github.com/memdos/sds/internal/pcm"
	"github.com/memdos/sds/internal/randx"
	"github.com/memdos/sds/internal/vmm"
	"github.com/memdos/sds/internal/workload"
)

// MicroConfig shapes the paper's testbed at micro-simulation scale: a
// victim VM (running the MicroApp equivalent of a modelled application),
// seven near-idle benign VMs, and one attacker VM, all sharing an LLC and a
// memory bus. Dynamics run at 1/10 of the telemetry time scale, and the SDS
// windows shrink accordingly.
type MicroConfig struct {
	// App is the victim application.
	App string
	// ProfileSeconds is the attack-free Stage-1 window (default 60).
	ProfileSeconds float64
	// StageSeconds is the attack-free and attacked stage length
	// (default 30 each).
	StageSeconds float64
	// AttackKind selects the attack (default bus locking).
	AttackKind attack.Kind
	// Detect carries the SDS parameters; zero value takes Table 1 scaled
	// by the micro time scale (W=100, ΔW=25, H_C=15).
	Detect detect.Config
	// Seed drives the simulation.
	Seed uint64
}

func (m MicroConfig) withDefaults() MicroConfig {
	if m.App == "" {
		m.App = workload.KMeans
	}
	if m.ProfileSeconds == 0 {
		m.ProfileSeconds = 60
	}
	if m.StageSeconds == 0 {
		m.StageSeconds = 30
	}
	if m.AttackKind == attack.None {
		m.AttackKind = attack.BusLock
	}
	if m.Detect.TPCM == 0 {
		m.Detect = detect.DefaultConfig()
		m.Detect.W = 100
		m.Detect.DW = 25
		m.Detect.HC = 15
	}
	if m.Seed == 0 {
		m.Seed = 1
	}
	return m
}

// MicroDetectionResult is the outcome of an end-to-end micro-architectural
// detection run.
type MicroDetectionResult struct {
	App    string
	Attack attack.Kind
	// Profile is the Stage-1 profile measured on the simulated hardware.
	Profile detect.Profile
	// Detected reports whether SDS/B alarmed during the attack stage.
	Detected bool
	// Delay is the detection delay in (micro-scale) seconds; negative when
	// not detected.
	Delay float64
	// FalseAlarms counts alarms during the attack-free monitored stage.
	FalseAlarms int
}

// buildMicroMachine assembles the 9-VM testbed. The attacker is nil-safe:
// pass attack.None to build a machine without one.
func buildMicroMachine(cfg MicroConfig, attackAt float64) (*vmm.Machine, *vmm.VM, error) {
	cache, err := cachesim.New(cachesim.Config{SizeBytes: 1 << 20, LineSize: 64, Ways: 4})
	if err != nil {
		return nil, nil, err
	}
	// Sized so the unlocked bus carries all VMs comfortably but a 90% lock
	// fraction starves them — mirroring the saturated memory buses of the
	// paper's socket under the atomic-locking attack.
	bus, err := membus.New(2e5, 0.95)
	if err != nil {
		return nil, nil, err
	}
	m, err := vmm.NewMachine(cache, bus)
	if err != nil {
		return nil, nil, err
	}

	victimApp, err := workload.NewMicroApp(cfg.App, 0, randx.Derive(cfg.Seed, 201))
	if err != nil {
		return nil, nil, err
	}
	victim, err := m.AddVM("victim", victimApp)
	if err != nil {
		return nil, nil, err
	}
	for i := 0; i < 7; i++ {
		idle, err := workload.NewIdle(fmt.Sprintf("benign-%d", i), 5000, randx.Derive(cfg.Seed, 210+uint64(i)))
		if err != nil {
			return nil, nil, err
		}
		if _, err := m.AddVM(idle.Name(), idle); err != nil {
			return nil, nil, err
		}
	}

	switch cfg.AttackKind {
	case attack.None:
		// no attacker VM
	case attack.BusLock:
		locker, err := attack.NewBusLocker(attackAt, 0.9, randx.Derive(cfg.Seed, 220))
		if err != nil {
			return nil, nil, err
		}
		if _, err := m.AddVM(locker.Name(), locker); err != nil {
			return nil, nil, err
		}
	case attack.Cleanse:
		cleanser, err := attack.NewCleanser(attackAt, 1.5e5, randx.Derive(cfg.Seed, 221))
		if err != nil {
			return nil, nil, err
		}
		if _, err := m.AddVM(cleanser.Name(), cleanser); err != nil {
			return nil, nil, err
		}
	default:
		return nil, nil, fmt.Errorf("experiment: unknown attack %v", cfg.AttackKind)
	}
	return m, victim, nil
}

// collectMicroSamples advances the machine to the deadline, returning the
// PCM samples observed for the victim.
func collectMicroSamples(m *vmm.Machine, victim *vmm.VM, monitor *pcm.Monitor, deadline float64) ([]pcm.Sample, error) {
	var out []pcm.Sample
	for m.Now() < deadline-1e-9 {
		if err := m.Tick(0.01); err != nil {
			return nil, err
		}
		samples, err := monitor.Advance(0.01)
		if err != nil {
			return nil, err
		}
		out = append(out, samples...)
	}
	return out, nil
}

// MicroDetectionRun executes the full pipeline on the micro-architectural
// simulator: Stage-1 profiling on an attack-free machine, then monitoring a
// second machine where the attacker fires after StageSeconds, with SDS/B
// reading the simulated PCM counters.
func (mc MicroConfig) MicroDetectionRun() (MicroDetectionResult, error) {
	cfg := mc.withDefaults()
	res := MicroDetectionResult{App: cfg.App, Attack: cfg.AttackKind, Delay: -1}

	// Stage 1: a machine without the attacker.
	profCfg := cfg
	profCfg.AttackKind = attack.None
	profMachine, profVictim, err := buildMicroMachine(profCfg, 0)
	if err != nil {
		return res, err
	}
	// Rebuild with attack.None needs the same victim seed: buildMicroMachine
	// derives every stream from cfg.Seed, so the two machines' victims are
	// statistically identical.
	profMonitor, err := newVictimMonitor(profMachine, profVictim, cfg.Detect.TPCM)
	if err != nil {
		return res, err
	}
	profSamples, err := collectMicroSamples(profMachine, profVictim, profMonitor, cfg.ProfileSeconds)
	if err != nil {
		return res, err
	}
	res.Profile, err = detect.BuildProfile(cfg.App, profSamples, cfg.Detect)
	if err != nil {
		return res, fmt.Errorf("micro profile %s: %w", cfg.App, err)
	}

	det, err := detect.NewSDSB(res.Profile, cfg.Detect)
	if err != nil {
		return res, err
	}

	// Stages 2+3: a machine with the attacker starting mid-run.
	attackAt := cfg.StageSeconds
	liveMachine, liveVictim, err := buildMicroMachine(cfg, attackAt)
	if err != nil {
		return res, err
	}
	liveMonitor, err := newVictimMonitor(liveMachine, liveVictim, cfg.Detect.TPCM)
	if err != nil {
		return res, err
	}
	total := 2 * cfg.StageSeconds
	samples, err := collectMicroSamples(liveMachine, liveVictim, liveMonitor, total)
	if err != nil {
		return res, err
	}
	for _, s := range samples {
		wasAlarmed := det.Alarmed()
		det.Observe(s)
		rising := det.Alarmed() && !wasAlarmed
		if rising && s.T < attackAt {
			res.FalseAlarms++
		}
		if s.T >= attackAt && det.Alarmed() && !res.Detected {
			// Alarm active during the attack counts as detection; the
			// delay is only meaningful when it rose after the onset.
			res.Detected = true
			if rising {
				res.Delay = s.T - attackAt
			}
		}
	}
	return res, nil
}

func newVictimMonitor(m *vmm.Machine, victim *vmm.VM, tpcm float64) (*pcm.Monitor, error) {
	return pcm.NewMonitor(func() (uint64, uint64) {
		st, err := m.CacheStats(victim.ID())
		if err != nil {
			return 0, 0
		}
		return st.Accesses, st.Misses
	}, tpcm)
}
